//! The Theorem 5.1 single-source lower-bound family.
//!
//! The graph `G(ε)` on ≈ `n` vertices consists of `k = ⌊n^{1-2ε}⌋` identical
//! copies `G_{ε,i}` hanging off the source `s`:
//!
//! * a path `π_i = [s_i = v^i_1, …, v^i_{d+1} = v*_i]` of length
//!   `d = ⌊n^ε/4⌋` whose first vertex is attached to `s`,
//! * `d` "landing" vertices `Z_i = {z^i_1, …, z^i_d}`,
//! * disjoint connector paths `P^i_j` from `v^i_j` to `z^i_j` of length
//!   `6 + 2(d − j)` (strictly decreasing in `j`),
//! * a vertex block `X_i` of size `Θ(n^{2ε})` fully connected to the path
//!   terminal `v*_i`,
//! * the complete bipartite graph `B_i = X_i × Z_i`.
//!
//! Failing the `j`-th path edge `e^i_j = (v^i_j, v^i_{j+1})` makes the unique
//! replacement route to every `x ∈ X_i` run through the connector `P^i_j` and
//! finish with the bipartite edge `(z^i_j, x)`; hence any structure that does
//! not reinforce `e^i_j` must contain all `|X_i|` of those bipartite edges
//! (Claim 5.3).

use ftb_graph::{EdgeId, Graph, GraphBuilder, VertexId};

/// A generated Theorem 5.1 instance together with the bookkeeping needed by
/// the certification routines.
#[derive(Clone, Debug)]
pub struct SingleSourceLowerBound {
    /// The graph `G(ε)`.
    pub graph: Graph,
    /// The source vertex `s`.
    pub source: VertexId,
    /// The ε the instance was generated for.
    pub eps: f64,
    /// Number of copies `k`.
    pub num_copies: usize,
    /// Path length `d` per copy.
    pub path_len: usize,
    /// `|X_i|` per copy.
    pub x_size: usize,
    /// The "costly" path edges `Π` (the `e^i_j`), grouped per copy.
    pub pi_edges: Vec<Vec<EdgeId>>,
    /// For every copy `i` and index `j`, the vertices of `X_i` (shared across
    /// `j`) — kept once per copy.
    pub x_vertices: Vec<Vec<VertexId>>,
    /// For every copy `i` and index `j` (0-based), the landing vertex
    /// `z^i_{j+1}`.
    pub z_vertices: Vec<Vec<VertexId>>,
    /// For every copy `i` and index `j`, the forced bipartite edges
    /// `E^i_j = {(x, z^i_j) : x ∈ X_i}`.
    pub forced_edges: Vec<Vec<Vec<EdgeId>>>,
}

impl SingleSourceLowerBound {
    /// All costly path edges `Π` flattened.
    pub fn all_pi_edges(&self) -> Vec<EdgeId> {
        self.pi_edges.iter().flatten().copied().collect()
    }

    /// `|Π| = k · d`.
    pub fn num_pi_edges(&self) -> usize {
        self.pi_edges.iter().map(|p| p.len()).sum()
    }

    /// Total number of bipartite edges (`|B| = k · d · |X_i|`).
    pub fn num_bipartite_edges(&self) -> usize {
        self.forced_edges
            .iter()
            .flat_map(|per_copy| per_copy.iter())
            .map(|set| set.len())
            .sum()
    }

    /// The paper's reinforcement budget `⌊n^{1-ε}/6⌋` for this instance.
    pub fn reinforcement_budget(&self) -> usize {
        let n = self.graph.num_vertices() as f64;
        (n.powf(1.0 - self.eps) / 6.0).floor() as usize
    }
}

/// Build the Theorem 5.1 instance targeting ≈ `n` vertices for
/// `ε ∈ (0, 1/2]`.
///
/// # Panics
/// Panics if `eps` is outside `(0, 0.5]` or `n` is too small to host a single
/// copy.
pub fn single_source_lower_bound(n: usize, eps: f64) -> SingleSourceLowerBound {
    assert!(
        eps > 0.0 && eps <= 0.5,
        "theorem 5.1 covers eps in (0, 1/2]"
    );
    assert!(n >= 32, "lower-bound construction needs n >= 32");
    let nf = n as f64;
    let d = ((nf.powf(eps) / 4.0).floor() as usize).max(1);
    let k = (nf.powf(1.0 - 2.0 * eps).floor() as usize).max(1);
    // Fixed vertices per copy: path (d+1) + Z (d) + connector interiors
    // Σ_j (t_j - 1) with t_j = 6 + 2(d - j)  ⇒  Σ = d² + 4d.
    let fixed_per_copy = (d + 1) + d + d * d + 4 * d;
    let remaining = n.saturating_sub(1 + k * fixed_per_copy);
    let x_size = (remaining / k).max(1);

    // Start from an empty vertex set: every vertex is allocated explicitly
    // below (the builder grows on demand).
    let mut b = GraphBuilder::with_capacity(0, k * (d * d + d * x_size + x_size + 2 * d));
    let source = b.add_vertex();

    let mut pi_edges = Vec::with_capacity(k);
    let mut x_vertices = Vec::with_capacity(k);
    let mut z_vertices = Vec::with_capacity(k);
    let mut forced_names: Vec<Vec<Vec<(VertexId, VertexId)>>> = Vec::with_capacity(k);

    for _copy in 0..k {
        // path π_i
        let path: Vec<VertexId> = b.add_vertices(d + 1);
        b.add_edge(source, path[0]);
        b.add_path(&path);
        let v_star = *path.last().unwrap();

        // landing vertices Z_i and connector paths P^i_j
        let z: Vec<VertexId> = b.add_vertices(d);
        for j in 1..=d {
            let t_j = 6 + 2 * (d - j);
            // interior chain of t_j - 1 vertices between v^i_j and z^i_j
            let interior = b.add_vertices(t_j - 1);
            let mut chain = Vec::with_capacity(t_j + 1);
            chain.push(path[j - 1]);
            chain.extend(interior);
            chain.push(z[j - 1]);
            b.add_path(&chain);
        }

        // X_i block connected to v*_i and fully to Z_i
        let x: Vec<VertexId> = b.add_vertices(x_size);
        for &xv in &x {
            b.add_edge(v_star, xv);
        }
        let mut per_copy_forced = Vec::with_capacity(d);
        for &zj in z.iter().take(d) {
            let mut set = Vec::with_capacity(x_size);
            for &xv in &x {
                b.add_edge(xv, zj);
                set.push((xv, zj));
            }
            per_copy_forced.push(set);
        }

        // record the π edges of this copy
        let copy_pi: Vec<(VertexId, VertexId)> = path.windows(2).map(|w| (w[0], w[1])).collect();
        pi_edges.push(copy_pi);
        x_vertices.push(x);
        z_vertices.push(z);
        forced_names.push(per_copy_forced);
    }

    let graph = b.build();
    // Resolve named edges to edge ids now that the graph is frozen.
    let resolve = |(a, c): (VertexId, VertexId)| {
        graph
            .find_edge(a, c)
            .expect("construction edge must exist in the frozen graph")
    };
    let pi_edge_ids: Vec<Vec<EdgeId>> = pi_edges
        .iter()
        .map(|copy| copy.iter().map(|&pair| resolve(pair)).collect())
        .collect();
    let forced_edge_ids: Vec<Vec<Vec<EdgeId>>> = forced_names
        .iter()
        .map(|per_copy| {
            per_copy
                .iter()
                .map(|set| set.iter().map(|&pair| resolve(pair)).collect())
                .collect()
        })
        .collect();

    SingleSourceLowerBound {
        graph,
        source,
        eps,
        num_copies: k,
        path_len: d,
        x_size,
        pi_edges: pi_edge_ids,
        x_vertices,
        z_vertices,
        forced_edges: forced_edge_ids,
    }
}

/// The `Ω(n^{3/2})` ESA'13-style instance: the `ε = 1/2` limit of the
/// Theorem 5.1 family (a single copy with a `√n`-length path).
pub fn esa13_lower_bound(n: usize) -> SingleSourceLowerBound {
    single_source_lower_bound(n, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::stats::is_connected;
    use ftb_sp::bfs_distances;

    #[test]
    fn construction_hits_the_target_size_roughly() {
        for (n, eps) in [(500usize, 0.2), (500, 0.33), (1000, 0.25), (800, 0.5)] {
            let lb = single_source_lower_bound(n, eps);
            let got = lb.graph.num_vertices();
            assert!(
                got >= n / 2 && got <= n + n / 2,
                "n={n}, eps={eps}: produced {got} vertices"
            );
            assert!(is_connected(&lb.graph));
            assert_eq!(lb.num_pi_edges(), lb.num_copies * lb.path_len);
            assert!(lb.x_size >= 1);
        }
    }

    #[test]
    fn bipartite_block_is_the_dominant_edge_mass() {
        let lb = single_source_lower_bound(1200, 0.3);
        // |B| = k·d·|X| should be a constant fraction of all edges.
        assert!(lb.num_bipartite_edges() * 3 >= lb.graph.num_edges());
    }

    #[test]
    fn fault_free_distances_route_through_the_path_terminal() {
        let lb = single_source_lower_bound(600, 0.25);
        let dist = bfs_distances(&lb.graph, lb.source);
        let d = lb.path_len as u32;
        for x in &lb.x_vertices[0] {
            // s → s_i → … → v*_i → x  =  1 + d + 1
            assert_eq!(dist[x.index()], d + 2);
        }
    }

    #[test]
    fn failing_a_pi_edge_forces_the_connector_route() {
        // Claim 5.3's distance structure: after failing e^i_j the distance to
        // every x ∈ X_i becomes 2d − j + 7 (1-based j), attained only through
        // the bipartite edge (z^i_j, x).
        let lb = single_source_lower_bound(400, 0.3);
        let copy = 0usize;
        let d = lb.path_len;
        for j in 0..lb.pi_edges[copy].len().min(3) {
            let e = lb.pi_edges[copy][j];
            let view = ftb_graph::SubgraphView::full(&lb.graph).without_edge(e);
            let dist = ftb_sp::bfs_distances_view(&view, lb.source);
            let expected = (2 * d - (j + 1) + 7) as u32;
            for x in lb.x_vertices[copy].iter().take(3) {
                assert_eq!(
                    dist[x.index()],
                    expected,
                    "copy {copy}, failed edge {j}, x {x:?}"
                );
            }
        }
    }

    #[test]
    fn esa13_instance_is_a_single_copy() {
        let lb = esa13_lower_bound(900);
        assert_eq!(lb.num_copies, 1);
        assert!(lb.path_len >= ((900f64).sqrt() / 4.0) as usize);
        assert!(is_connected(&lb.graph));
    }

    #[test]
    fn reinforcement_budget_follows_the_theorem() {
        let lb = single_source_lower_bound(1000, 0.3);
        let n = lb.graph.num_vertices() as f64;
        assert_eq!(
            lb.reinforcement_budget(),
            (n.powf(0.7) / 6.0).floor() as usize
        );
    }

    #[test]
    #[should_panic]
    fn eps_above_half_is_rejected() {
        single_source_lower_bound(500, 0.7);
    }
}
