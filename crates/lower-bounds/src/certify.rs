//! Certification of the forcing arguments (Claims 5.3 / 5.6).
//!
//! The lower-bound theorems argue that every structure with a bounded
//! reinforcement budget must contain all bipartite edges `E^i_j` associated
//! with each unreinforced path edge `e^i_j`. These routines (a) compute the
//! implied numeric lower bound for a given budget and (b) empirically confirm
//! the forcing on a concrete instance by checking that dropping a single
//! bipartite edge breaks the replacement distance of its `X`-vertex.

use crate::single_source::SingleSourceLowerBound;
use ftb_graph::{EdgeMask, SubgraphView};
use ftb_sp::{bfs_distances_view, UNREACHABLE};

/// Result of empirically checking the forcing argument on one instance.
#[derive(Clone, Debug, Default)]
pub struct ForcingCheck {
    /// Number of `(π-edge, bipartite-edge)` samples checked.
    pub samples: usize,
    /// Samples where dropping the bipartite edge strictly increased the
    /// post-failure distance of its `X`-vertex (i.e. the edge is genuinely
    /// forced into any structure that does not reinforce the π edge).
    pub confirmed: usize,
}

impl ForcingCheck {
    /// `true` if every sampled bipartite edge was confirmed to be forced.
    pub fn all_confirmed(&self) -> bool {
        self.samples > 0 && self.samples == self.confirmed
    }
}

/// The certified backup lower bound of Claim 5.3: with a reinforcement budget
/// of `r_budget` edges, at least `(|Π| − r_budget) · |X_i|` bipartite edges
/// must appear in any ε FT-BFS structure of the instance (0 if the budget
/// covers all of `Π`).
pub fn certified_backup_lower_bound(lb: &SingleSourceLowerBound, r_budget: usize) -> usize {
    lb.num_pi_edges().saturating_sub(r_budget) * lb.x_size
}

/// Empirically verify the forcing argument on up to `max_samples` sampled
/// `(π-edge, bipartite-edge)` pairs: for each sample, check that
/// `dist(s, x, (G ∖ {(x, z^i_j)}) ∖ {e^i_j}) > dist(s, x, G ∖ {e^i_j})`, so a
/// structure missing the bipartite edge cannot preserve the replacement
/// distance of `x` unless it reinforces `e^i_j`.
pub fn verify_forcing(lb: &SingleSourceLowerBound, max_samples: usize) -> ForcingCheck {
    let mut check = ForcingCheck::default();
    let graph = &lb.graph;
    'outer: for copy in 0..lb.num_copies {
        for (j, &pi_edge) in lb.pi_edges[copy].iter().enumerate() {
            // Reference: distances after failing the π edge only.
            let view_ref = SubgraphView::full(graph).without_edge(pi_edge);
            let dist_ref = bfs_distances_view(&view_ref, lb.source);
            // Sample a handful of bipartite edges of E^i_j.
            for &bip_edge in lb.forced_edges[copy][j].iter().take(3) {
                if check.samples >= max_samples {
                    break 'outer;
                }
                check.samples += 1;
                let edge = graph.edge(bip_edge);
                let z = lb.z_vertices[copy][j];
                let x = edge.other(z);
                let mask = EdgeMask::removing(graph, [bip_edge]);
                let view_cut = SubgraphView::full(graph)
                    .without_edge(pi_edge)
                    .with_edge_mask(&mask);
                let dist_cut = bfs_distances_view(&view_cut, lb.source);
                let before = dist_ref[x.index()];
                let after = dist_cut[x.index()];
                if before != UNREACHABLE && (after > before || after == UNREACHABLE) {
                    check.confirmed += 1;
                }
            }
        }
    }
    check
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_source::single_source_lower_bound;

    #[test]
    fn certified_bound_scales_with_budget() {
        let lb = single_source_lower_bound(600, 0.3);
        let full = certified_backup_lower_bound(&lb, 0);
        assert_eq!(full, lb.num_pi_edges() * lb.x_size);
        let half = certified_backup_lower_bound(&lb, lb.num_pi_edges() / 2);
        assert!(half < full && half > 0);
        let none = certified_backup_lower_bound(&lb, lb.num_pi_edges());
        assert_eq!(none, 0);
        // over-budget saturates at zero
        assert_eq!(certified_backup_lower_bound(&lb, usize::MAX), 0);
    }

    #[test]
    fn forcing_is_confirmed_on_small_instances() {
        let lb = single_source_lower_bound(300, 0.3);
        let check = verify_forcing(&lb, 40);
        assert!(check.samples > 0);
        assert!(
            check.all_confirmed(),
            "only {}/{} forcing samples confirmed",
            check.confirmed,
            check.samples
        );
    }

    #[test]
    fn forcing_is_confirmed_on_the_esa13_instance() {
        let lb = crate::single_source::esa13_lower_bound(400);
        let check = verify_forcing(&lb, 25);
        assert!(check.all_confirmed());
    }

    #[test]
    fn sample_cap_is_respected() {
        let lb = single_source_lower_bound(500, 0.25);
        let check = verify_forcing(&lb, 5);
        assert_eq!(check.samples, 5);
    }
}
