//! Algorithm `Pcons` (Phase S0): canonical replacement paths for all pairs.

use crate::pair::{PairId, ReplacementPath, VePair};
use ftb_graph::{EdgeMask, Graph, SubgraphView, VertexId, VertexMask};
use ftb_par::{parallel_map, ParallelConfig};
use ftb_sp::{
    LexSearch, Path, ReplacementDistances, ShortestPathTree, TieBreakWeights, UNREACHABLE,
};
use std::collections::HashMap;

/// The output of Algorithm `Pcons`: one canonical replacement path per
/// vertex–edge pair `⟨v, e⟩` with `e ∈ π(s, v)` for which a replacement path
/// exists (pairs whose failure disconnects the terminal are omitted — no
/// protection is required for them).
#[derive(Clone, Debug)]
pub struct ReplacementPaths {
    source: VertexId,
    paths: Vec<ReplacementPath>,
    index: HashMap<(VertexId, ftb_graph::EdgeId), PairId>,
    by_terminal: HashMap<VertexId, Vec<PairId>>,
    uncovered: Vec<PairId>,
}

impl ReplacementPaths {
    /// Run Algorithm `Pcons` for every pair, in parallel over terminals.
    pub fn compute(
        graph: &Graph,
        weights: &TieBreakWeights,
        tree: &ShortestPathTree,
        dists: &ReplacementDistances,
        config: &ParallelConfig,
    ) -> Self {
        let source = tree.source();
        let terminals: Vec<VertexId> = tree
            .vertices_by_depth()
            .into_iter()
            .filter(|&v| v != source)
            .collect();
        let per_terminal: Vec<Vec<ReplacementPath>> = parallel_map(config, terminals.len(), |i| {
            compute_for_terminal(graph, weights, tree, dists, terminals[i])
        });

        let mut paths = Vec::new();
        let mut index = HashMap::new();
        let mut by_terminal: HashMap<VertexId, Vec<PairId>> = HashMap::new();
        let mut uncovered = Vec::new();
        for bundle in per_terminal {
            for rp in bundle {
                let id: PairId = paths.len();
                index.insert((rp.pair.terminal, rp.pair.failing_edge), id);
                by_terminal.entry(rp.pair.terminal).or_default().push(id);
                if rp.new_ending {
                    uncovered.push(id);
                }
                paths.push(rp);
            }
        }
        ReplacementPaths {
            source,
            paths,
            index,
            by_terminal,
            uncovered,
        }
    }

    /// The BFS source.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Total number of pairs with a replacement path.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if no pair has a replacement path (e.g. a tree-shaped graph).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The replacement path with the given id.
    pub fn get(&self, id: PairId) -> &ReplacementPath {
        &self.paths[id]
    }

    /// All replacement paths.
    pub fn all(&self) -> &[ReplacementPath] {
        &self.paths
    }

    /// Look up the pair `⟨v, e⟩`.
    pub fn lookup(&self, terminal: VertexId, failing_edge: ftb_graph::EdgeId) -> Option<PairId> {
        self.index.get(&(terminal, failing_edge)).copied()
    }

    /// Ids of the pairs whose replacement path is *new-ending* (the paper's
    /// uncovered set `UP`).
    pub fn uncovered(&self) -> &[PairId] {
        &self.uncovered
    }

    /// Ids of the pairs of a given terminal (the paper's `UP(v)` restricted
    /// to pairs that have a replacement path), in increasing depth of the
    /// failing edge.
    pub fn pairs_of_terminal(&self, v: VertexId) -> &[PairId] {
        self.by_terminal
            .get(&v)
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// Convenience constructor running the whole Phase S0 pipeline
    /// (tie-break weights are provided by the caller so that all layers share
    /// the same `W`).
    pub fn compute_full(
        graph: &Graph,
        weights: &TieBreakWeights,
        source: VertexId,
        config: &ParallelConfig,
    ) -> (ShortestPathTree, ReplacementDistances, Self) {
        let tree = ShortestPathTree::build(graph, weights, source);
        let dists = ReplacementDistances::compute(graph, &tree, config);
        let rp = Self::compute(graph, weights, &tree, &dists, config);
        (tree, dists, rp)
    }
}

/// Run Algorithm `Pcons` for all failing edges on `π(s, v)` of one terminal.
fn compute_for_terminal(
    graph: &Graph,
    weights: &TieBreakWeights,
    tree: &ShortestPathTree,
    dists: &ReplacementDistances,
    v: VertexId,
) -> Vec<ReplacementPath> {
    let source = tree.source();
    let Some(pi) = tree.path_to(v) else {
        return Vec::new();
    };
    let pi_vertices = pi.vertices().to_vec();
    let pi_edges = pi.edges().to_vec();
    let k = pi_edges.len(); // depth of v

    // G'(v): the graph with every non-tree edge incident to v removed. Any
    // replacement path ending with a tree edge lives entirely inside G'(v).
    let mut gprime_mask = EdgeMask::none(graph);
    for (_, e) in graph.neighbors(v) {
        if !tree.is_tree_edge(e) {
            gprime_mask.remove(e);
        }
    }

    let mut out = Vec::with_capacity(k);
    for (idx, &e) in pi_edges.iter().enumerate() {
        let Some(target) = dists.dist(e, v) else {
            continue;
        };
        if target == UNREACHABLE {
            // The failure disconnects v: dist(s, v, G \ {e}) = ∞ and no
            // protection is required for this pair.
            continue;
        }
        let failing_edge_depth = (idx + 1) as u32;
        let pair = VePair {
            terminal: v,
            failing_edge: e,
        };

        // Step 1: try to find a replacement path whose last edge is in T0.
        let view = SubgraphView::full(graph)
            .without_edge(e)
            .with_edge_mask(&gprime_mask);
        let covered_search = LexSearch::run_view_target(&view, weights, source, v);
        if covered_search.hops(v) == Some(target) {
            let path = covered_search.path_to(v).expect("target settled");
            let last_edge = path.last_edge().expect("non-trivial path");
            debug_assert!(tree.is_tree_edge(last_edge));
            out.push(ReplacementPath {
                pair,
                path,
                last_edge,
                new_ending: false,
                divergence: None,
                divergence_index: None,
                failing_edge_depth,
                terminal_depth: k as u32,
            });
            continue;
        }

        // Step 2: the path must be new-ending. Among all replacement paths,
        // pick the one whose unique divergence point from π(s, v) is as
        // close to the source as possible: binary-search the minimal prefix
        // index j such that removing the interior of π(u_j, v) still allows
        // a path of the optimal length.
        let probe = |j: usize| -> LexSearch {
            let removed = pi_vertices[j + 1..k].iter().copied();
            let vmask = VertexMask::removing(graph, removed);
            let view = SubgraphView::full(graph)
                .without_edge(e)
                .with_vertex_mask(&vmask);
            LexSearch::run_view_target(&view, weights, source, v)
        };
        let feasible = |s: &LexSearch| s.hops(v) == Some(target);

        // The predicate is monotone in j and true at j = idx (Lemma 4.3);
        // binary-search the smallest feasible index.
        if !feasible(&probe(idx)) {
            // Defensive fallback (should not happen): take the unconstrained
            // canonical replacement path.
            let view = SubgraphView::full(graph).without_edge(e);
            let fallback = LexSearch::run_view_target(&view, weights, source, v);
            if !feasible(&fallback) {
                continue;
            }
            push_new_ending(
                &mut out,
                pair,
                &pi_vertices,
                fallback.path_to(v).unwrap(),
                failing_edge_depth,
                k as u32,
                tree,
            );
            continue;
        }
        let mut lo = 0usize;
        let mut hi = idx;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if feasible(&probe(mid)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let chosen = probe(hi);
        debug_assert!(feasible(&chosen));
        let path = chosen.path_to(v).expect("feasible probe reaches v");
        push_new_ending(
            &mut out,
            pair,
            &pi_vertices,
            path,
            failing_edge_depth,
            k as u32,
            tree,
        );
    }
    out
}

/// Record a new-ending replacement path, computing its divergence point.
fn push_new_ending(
    out: &mut Vec<ReplacementPath>,
    pair: VePair,
    pi_vertices: &[VertexId],
    path: Path,
    failing_edge_depth: u32,
    terminal_depth: u32,
    tree: &ShortestPathTree,
) {
    let last_edge = path.last_edge().expect("non-trivial path");
    debug_assert!(
        !tree.is_tree_edge(last_edge),
        "step-1 failure implies a non-tree last edge"
    );
    // Divergence: longest common prefix with π(s, v).
    let verts = path.vertices();
    let mut d_idx = 0usize;
    while d_idx + 1 < verts.len()
        && d_idx + 1 < pi_vertices.len()
        && verts[d_idx + 1] == pi_vertices[d_idx + 1]
    {
        d_idx += 1;
    }
    out.push(ReplacementPath {
        pair,
        divergence: Some(verts[d_idx]),
        divergence_index: Some(d_idx),
        path,
        last_edge,
        new_ending: true,
        failing_edge_depth,
        terminal_depth,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;

    fn full_setup(
        graph: &Graph,
        seed: u64,
    ) -> (
        TieBreakWeights,
        ShortestPathTree,
        ReplacementDistances,
        ReplacementPaths,
    ) {
        let weights = TieBreakWeights::generate(graph, seed);
        let (tree, dists, rp) =
            ReplacementPaths::compute_full(graph, &weights, VertexId(0), &ParallelConfig::serial());
        (weights, tree, dists, rp)
    }

    #[test]
    fn tree_graphs_have_no_replaceable_pairs() {
        // On a path graph every failure disconnects the suffix, so no pair
        // needs (or has) a replacement path.
        let g = generators::path(10);
        let (_w, _t, _d, rp) = full_setup(&g, 1);
        assert!(rp.is_empty());
        assert!(rp.uncovered().is_empty());
        assert_eq!(rp.len(), 0);
    }

    #[test]
    fn every_pair_path_is_a_valid_replacement_path() {
        let g = generators::hypercube(4);
        let (_w, tree, dists, rp) = full_setup(&g, 3);
        assert!(!rp.is_empty());
        for item in rp.all() {
            let v = item.pair.terminal;
            let e = item.pair.failing_edge;
            // the path avoids the failing edge, starts at s, ends at v
            assert!(!item.path.contains_edge(e));
            assert_eq!(item.path.first(), VertexId(0));
            assert_eq!(item.path.last(), v);
            item.path.validate(&g).unwrap();
            // the path is a *shortest* path in G \ {e}
            let opt = dists.dist(e, v).unwrap();
            assert_eq!(item.path.len() as u32, opt);
            // the failing edge is on π(s, v)
            assert!(tree.path_edges_to(v).contains(&e));
        }
    }

    #[test]
    fn covered_pairs_end_with_tree_edges_and_uncovered_do_not() {
        let g = generators::grid(5, 5);
        let (_w, tree, _d, rp) = full_setup(&g, 5);
        for item in rp.all() {
            if item.new_ending {
                assert!(!tree.is_tree_edge(item.last_edge));
                assert!(item.divergence.is_some());
            } else {
                assert!(tree.is_tree_edge(item.last_edge));
                assert!(item.divergence.is_none());
            }
        }
        let uncovered_count = rp.all().iter().filter(|p| p.new_ending).count();
        assert_eq!(uncovered_count, rp.uncovered().len());
    }

    #[test]
    fn detours_are_vertex_disjoint_from_pi_except_endpoints() {
        // Observation 3.2: D(P) and π(s, v) share only d(P) and v.
        let g = generators::hypercube(4);
        let (_w, tree, _d, rp) = full_setup(&g, 7);
        for item in rp.all().iter().filter(|p| p.new_ending) {
            let v = item.pair.terminal;
            let pi: Vec<VertexId> = tree.path_to(v).unwrap().vertices().to_vec();
            let d = item.divergence.unwrap();
            for &z in item.detour_vertices() {
                if z == d || z == v {
                    continue;
                }
                assert!(!pi.contains(&z), "detour vertex {z:?} lies on π(s, {v:?})");
            }
        }
    }

    #[test]
    fn divergence_is_above_the_failing_edge() {
        // Claim 4.4: the divergence point of a new-ending path is strictly
        // above the failing edge on π(s, v).
        let g = generators::grid(4, 6);
        let (_w, tree, _d, rp) = full_setup(&g, 11);
        for item in rp.all().iter().filter(|p| p.new_ending) {
            let d = item.divergence.unwrap();
            let d_depth = tree.depth(d).unwrap();
            assert!(
                d_depth < item.failing_edge_depth,
                "divergence {d:?} (depth {d_depth}) not above failing edge (depth {})",
                item.failing_edge_depth
            );
        }
    }

    #[test]
    fn lookup_and_per_terminal_indexes_agree() {
        let g = generators::hypercube(3);
        let (_w, _t, _d, rp) = full_setup(&g, 13);
        for (id, item) in rp.all().iter().enumerate() {
            assert_eq!(
                rp.lookup(item.pair.terminal, item.pair.failing_edge),
                Some(id)
            );
            assert!(rp.pairs_of_terminal(item.pair.terminal).contains(&id));
        }
        assert_eq!(rp.lookup(VertexId(0), ftb_graph::EdgeId(0)), None);
        assert!(rp.pairs_of_terminal(VertexId(0)).is_empty());
        assert_eq!(rp.source(), VertexId(0));
    }

    #[test]
    fn parallel_and_serial_pcons_agree() {
        let g = generators::grid(5, 5);
        let weights = TieBreakWeights::generate(&g, 17);
        let tree = ShortestPathTree::build(&g, &weights, VertexId(0));
        let dists = ReplacementDistances::compute(&g, &tree, &ParallelConfig::serial());
        let serial =
            ReplacementPaths::compute(&g, &weights, &tree, &dists, &ParallelConfig::serial());
        let parallel = ReplacementPaths::compute(
            &g,
            &weights,
            &tree,
            &dists,
            &ParallelConfig::with_threads(4),
        );
        assert_eq!(serial.len(), parallel.len());
        for item in serial.all() {
            let id = parallel
                .lookup(item.pair.terminal, item.pair.failing_edge)
                .unwrap();
            let other = parallel.get(id);
            assert_eq!(other.path, item.path);
            assert_eq!(other.new_ending, item.new_ending);
            assert_eq!(other.last_edge, item.last_edge);
        }
    }

    #[test]
    fn cycle_pairs_are_all_covered_or_new_ending_consistently() {
        // On an even cycle, failing the first edge of π(s, v) forces the
        // antipodal-ish vertices to reroute; the replacement path ends with
        // an edge of the other side of the cycle, which *is* a tree edge for
        // some terminals and not for others. Just verify global invariants.
        let g = generators::cycle(9);
        let (_w, _tree, dists, rp) = full_setup(&g, 19);
        assert!(!rp.is_empty());
        for item in rp.all() {
            assert_eq!(
                item.path.len() as u32,
                dists
                    .dist(item.pair.failing_edge, item.pair.terminal)
                    .unwrap()
            );
        }
    }
}
