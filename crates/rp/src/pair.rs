//! Vertex–edge pairs and their canonical replacement paths.

use ftb_graph::{EdgeId, VertexId};
use ftb_sp::Path;

/// Index of a pair inside a [`crate::ReplacementPaths`] collection.
pub type PairId = usize;

/// A vertex–edge pair `⟨v, e⟩`: terminal `v` and a failing edge `e` on the
/// canonical shortest path `π(s, v)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VePair {
    /// The terminal vertex `v`.
    pub terminal: VertexId,
    /// The failing tree edge `e ∈ π(s, v)`.
    pub failing_edge: EdgeId,
}

/// The canonical replacement path `P_{v,e}` chosen by Algorithm `Pcons` for a
/// pair `⟨v, e⟩`, together with the structural facts the later phases need.
#[derive(Clone, Debug)]
pub struct ReplacementPath {
    /// The pair this path protects.
    pub pair: VePair,
    /// The full replacement path from the source to `pair.terminal` in
    /// `G ∖ {pair.failing_edge}`.
    pub path: Path,
    /// `LastE(P)`: the last edge of the path.
    pub last_edge: EdgeId,
    /// `true` if the last edge is **not** a tree edge (the pair is then
    /// *uncovered* in the paper's terminology).
    pub new_ending: bool,
    /// For new-ending paths, the unique divergence point `d(P)` from
    /// `π(s, v)`; `None` for covered pairs.
    pub divergence: Option<VertexId>,
    /// For new-ending paths, the index of `d(P)` inside `path.vertices()`.
    pub divergence_index: Option<usize>,
    /// Hop depth of the failing edge (`dist(s, e)` = depth of its child
    /// endpoint in `T0`).
    pub failing_edge_depth: u32,
    /// Hop depth of the terminal (`dist(s, v, G)`).
    pub terminal_depth: u32,
}

impl ReplacementPath {
    /// Distance (in edges) between the failing edge and the terminal along
    /// `π(s, v)` — the ordering key used by Phase S1's "deepest edges first"
    /// rule (`dist(v, e, π(s,v))`).
    pub fn edge_to_terminal_distance(&self) -> u32 {
        self.terminal_depth - self.failing_edge_depth
    }

    /// The detour `D(P) = P[d(P), v]` of a new-ending path: the suffix of the
    /// path starting at the divergence point. Empty for covered pairs.
    pub fn detour_vertices(&self) -> &[VertexId] {
        match self.divergence_index {
            Some(i) => &self.path.vertices()[i..],
            None => &[],
        }
    }

    /// The *internal* detour vertices: detour vertices excluding the
    /// divergence point and the terminal.
    pub fn detour_interior(&self) -> &[VertexId] {
        let d = self.detour_vertices();
        if d.len() <= 2 {
            &[]
        } else {
            &d[1..d.len() - 1]
        }
    }

    /// Length of the detour in edges (0 for covered pairs).
    pub fn detour_len(&self) -> usize {
        self.detour_vertices().len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(
        vertices: Vec<u32>,
        div_idx: Option<usize>,
        edge_depth: u32,
        term_depth: u32,
    ) -> ReplacementPath {
        let vs: Vec<VertexId> = vertices.iter().map(|&v| VertexId(v)).collect();
        let es: Vec<EdgeId> = (0..vs.len() - 1).map(|i| EdgeId(i as u32)).collect();
        let last = *es.last().unwrap();
        ReplacementPath {
            pair: VePair {
                terminal: *vs.last().unwrap(),
                failing_edge: EdgeId(99),
            },
            path: Path::new(vs.clone(), es),
            last_edge: last,
            new_ending: div_idx.is_some(),
            divergence: div_idx.map(|i| vs[i]),
            divergence_index: div_idx,
            failing_edge_depth: edge_depth,
            terminal_depth: term_depth,
        }
    }

    #[test]
    fn detour_accessors_for_new_ending_path() {
        let p = mk(vec![0, 1, 2, 3, 4, 5], Some(2), 3, 5);
        assert_eq!(p.detour_vertices().len(), 4);
        assert_eq!(p.detour_vertices()[0], VertexId(2));
        assert_eq!(p.detour_interior(), &[VertexId(3), VertexId(4)]);
        assert_eq!(p.detour_len(), 3);
        assert_eq!(p.edge_to_terminal_distance(), 2);
    }

    #[test]
    fn covered_pairs_have_no_detour() {
        let p = mk(vec![0, 1, 2], None, 1, 2);
        assert!(p.detour_vertices().is_empty());
        assert!(p.detour_interior().is_empty());
        assert_eq!(p.detour_len(), 0);
    }

    #[test]
    fn short_detours_have_empty_interior() {
        let p = mk(vec![0, 1, 2, 3], Some(2), 2, 3);
        assert_eq!(p.detour_vertices().len(), 2);
        assert!(p.detour_interior().is_empty());
        assert_eq!(p.detour_len(), 1);
    }
}
