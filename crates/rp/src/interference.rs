//! Interference between detours of different terminals (Phase S1 analysis).
//!
//! Two new-ending replacement paths `P = P_{v,e}` and `P' = P_{t,e'}` with
//! `v ≠ t` *interfere* (Eq. 1) when their detours share a vertex internal to
//! both. Interference is split by the relation between the protected edges:
//!
//! * `(≁)`-interference — `e ≁ e'` (the failing edges do not lie on a common
//!   root path); handled by Phase S1,
//! * `(∼)`-interference — `e ∼ e'`; handled by Phase S2.
//!
//! Within a working set `P_ℓ` the paths are typed (Eq. 2–3):
//!
//! * type **A** — the path π-intersects some `(≁)`-interfering path of the
//!   set (its detour touches the other terminal's tree path below the LCA),
//! * type **B** — not A, and it `(≁)`-interferes with another non-A path of
//!   the set,
//! * type **C** — everything else; the C pairs form a `(∼)`-set and are
//!   deferred to Phase S2.

use crate::pair::PairId;
use crate::pcons::ReplacementPaths;
use ftb_graph::{EdgeId, VertexId};
use ftb_sp::ShortestPathTree;
use ftb_tree::TreeIndex;
use std::collections::HashMap;

/// The Phase S1 type of a pair within a working set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairType {
    /// π-intersects a `(≁)`-interfering path of the set (Eq. 2).
    A,
    /// `(≁)`-interferes with another non-A path of the set (Eq. 3).
    B,
    /// Neither A nor B; deferred to Phase S2 as part of a `(∼)`-set.
    C,
}

/// Index over the detours of the uncovered pairs, supporting interference
/// queries and the A/B/C classification.
pub struct InterferenceIndex<'a> {
    rp: &'a ReplacementPaths,
    tree: &'a ShortestPathTree,
    index: &'a TreeIndex,
    /// internal detour vertex -> uncovered pairs whose detour interior
    /// contains it.
    interior_map: HashMap<VertexId, Vec<PairId>>,
}

impl<'a> InterferenceIndex<'a> {
    /// Build the index over all uncovered (new-ending) pairs.
    pub fn build(
        rp: &'a ReplacementPaths,
        tree: &'a ShortestPathTree,
        index: &'a TreeIndex,
    ) -> Self {
        let mut interior_map: HashMap<VertexId, Vec<PairId>> = HashMap::new();
        for &id in rp.uncovered() {
            for &z in rp.get(id).detour_interior() {
                interior_map.entry(z).or_default().push(id);
            }
        }
        InterferenceIndex {
            rp,
            tree,
            index,
            interior_map,
        }
    }

    /// The paper's `∼` relation on failing (tree) edges.
    pub fn edges_related(&self, e: EdgeId, e_prime: EdgeId) -> bool {
        self.index.edges_related(self.tree, e, e_prime)
    }

    /// Eq. (1): do the detours of `p` and `q` share a vertex internal to
    /// both (and are the terminals distinct)?
    pub fn interferes(&self, p: PairId, q: PairId) -> bool {
        let a = self.rp.get(p);
        let b = self.rp.get(q);
        if a.pair.terminal == b.pair.terminal {
            return false;
        }
        // Iterate over the shorter interior for the membership test.
        let (short, long) = if a.detour_interior().len() <= b.detour_interior().len() {
            (a, b)
        } else {
            (b, a)
        };
        let long_set: std::collections::HashSet<VertexId> =
            long.detour_interior().iter().copied().collect();
        short.detour_interior().iter().any(|z| long_set.contains(z))
    }

    /// `(≁)`-interference: [`Self::interferes`] and the failing edges are not
    /// `∼`-related.
    pub fn non_sim_interferes(&self, p: PairId, q: PairId) -> bool {
        let a = self.rp.get(p);
        let b = self.rp.get(q);
        !self.edges_related(a.pair.failing_edge, b.pair.failing_edge) && self.interferes(p, q)
    }

    /// All uncovered pairs that `(≁)`-interfere with `p` (the paper's
    /// `I_{≁}(⟨v, e⟩)`), optionally restricted to a membership predicate.
    pub fn non_sim_interference_set(
        &self,
        p: PairId,
        restrict: Option<&dyn Fn(PairId) -> bool>,
    ) -> Vec<PairId> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let a = self.rp.get(p);
        for z in a.detour_interior() {
            if let Some(candidates) = self.interior_map.get(z) {
                for &q in candidates {
                    if q == p || seen.contains(&q) {
                        continue;
                    }
                    if let Some(f) = restrict {
                        if !f(q) {
                            continue;
                        }
                    }
                    let b = self.rp.get(q);
                    if b.pair.terminal == a.pair.terminal {
                        continue;
                    }
                    if self.edges_related(a.pair.failing_edge, b.pair.failing_edge) {
                        continue;
                    }
                    // sharing `z`, which is internal to both, certifies Eq. (1)
                    seen.insert(q);
                    out.push(q);
                }
            }
        }
        out
    }

    /// π-intersection (Fig. 2): the detour of `p` touches a vertex of
    /// `π(LCA(v,t), t) ∖ {LCA(v,t)}`, where `v` is `p`'s terminal and `t` is
    /// `q`'s terminal. Not symmetric.
    pub fn pi_intersects(&self, p: PairId, q: PairId) -> bool {
        let a = self.rp.get(p);
        let b = self.rp.get(q);
        let v = a.pair.terminal;
        let t = b.pair.terminal;
        let Some(l) = self.index.lca(v, t) else {
            return false;
        };
        let l_depth = self.index.depth(l);
        a.detour_vertices().iter().any(|&z| {
            self.index.in_tree(z) && self.index.depth(z) > l_depth && self.index.is_ancestor(z, t)
        })
    }

    /// Split the uncovered pairs into `I1` (pairs with at least one
    /// `(≁)`-interfering partner among all uncovered pairs) and `I2` (the
    /// rest, which by construction is a `(∼)`-set).
    pub fn split_i1_i2(&self) -> (Vec<PairId>, Vec<PairId>) {
        let mut i1 = Vec::new();
        let mut i2 = Vec::new();
        for &p in self.rp.uncovered() {
            if self.non_sim_interference_set(p, None).is_empty() {
                i2.push(p);
            } else {
                i1.push(p);
            }
        }
        (i1, i2)
    }

    /// Classify each pair of `subset` into type A, B or C with respect to the
    /// subset (Eq. 2–3). Returns `(type_a, type_b, type_c)` preserving the
    /// subset order inside each class.
    pub fn classify(&self, subset: &[PairId]) -> (Vec<PairId>, Vec<PairId>, Vec<PairId>) {
        let member: std::collections::HashSet<PairId> = subset.iter().copied().collect();
        let in_subset = |q: PairId| member.contains(&q);

        // Pre-compute I_{≁}(p) ∩ subset for every subset pair.
        let neighbors: HashMap<PairId, Vec<PairId>> = subset
            .iter()
            .map(|&p| (p, self.non_sim_interference_set(p, Some(&in_subset))))
            .collect();

        // Type A (Eq. 2).
        let mut type_a = Vec::new();
        let mut is_a: std::collections::HashSet<PairId> = std::collections::HashSet::new();
        for &p in subset {
            let interfering = &neighbors[&p];
            if interfering.iter().any(|&q| self.pi_intersects(p, q)) {
                type_a.push(p);
                is_a.insert(p);
            }
        }

        // Type B (Eq. 3): not A, and (≁)-interferes with some non-A subset pair.
        let mut type_b = Vec::new();
        let mut is_b: std::collections::HashSet<PairId> = std::collections::HashSet::new();
        for &p in subset {
            if is_a.contains(&p) {
                continue;
            }
            if neighbors[&p].iter().any(|q| !is_a.contains(q)) {
                type_b.push(p);
                is_b.insert(p);
            }
        }

        // Type C: the rest.
        let type_c = subset
            .iter()
            .copied()
            .filter(|p| !is_a.contains(p) && !is_b.contains(p))
            .collect();
        (type_a, type_b, type_c)
    }

    /// `true` if `subset` is a `(∼)`-set: no two of its pairs
    /// `(≁)`-interfere.
    pub fn is_sim_set(&self, subset: &[PairId]) -> bool {
        let member: std::collections::HashSet<PairId> = subset.iter().copied().collect();
        let in_subset = |q: PairId| member.contains(&q);
        subset.iter().all(|&p| {
            self.non_sim_interference_set(p, Some(&in_subset))
                .is_empty()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::Graph;
    use ftb_par::ParallelConfig;
    use ftb_sp::{ReplacementDistances, TieBreakWeights};
    use ftb_workloads::families;

    struct Fixture {
        tree: ShortestPathTree,
        rp: ReplacementPaths,
        index: TreeIndex,
    }

    fn fixture(graph: &Graph, seed: u64) -> Fixture {
        let weights = TieBreakWeights::generate(graph, seed);
        let tree = ShortestPathTree::build(graph, &weights, VertexId(0));
        let dists = ReplacementDistances::compute(graph, &tree, &ParallelConfig::serial());
        let rp =
            ReplacementPaths::compute(graph, &weights, &tree, &dists, &ParallelConfig::serial());
        let index = TreeIndex::build(&tree);
        Fixture { tree, rp, index }
    }

    #[test]
    fn interference_is_symmetric_and_irreflexive_per_terminal() {
        let g = families::erdos_renyi_gnp(60, 0.12, 5);
        let f = fixture(&g, 5);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let uncovered = f.rp.uncovered();
        for &p in uncovered.iter().take(30) {
            for &q in uncovered.iter().take(30) {
                if f.rp.get(p).pair.terminal == f.rp.get(q).pair.terminal {
                    assert!(!idx.interferes(p, q));
                } else {
                    assert_eq!(idx.interferes(p, q), idx.interferes(q, p));
                    assert_eq!(idx.non_sim_interferes(p, q), idx.non_sim_interferes(q, p));
                }
            }
        }
    }

    #[test]
    fn non_sim_set_matches_pairwise_definition() {
        let g = families::erdos_renyi_gnp(50, 0.15, 7);
        let f = fixture(&g, 7);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        for &p in f.rp.uncovered().iter().take(40) {
            let set = idx.non_sim_interference_set(p, None);
            for &q in f.rp.uncovered() {
                let expected = idx.non_sim_interferes(p, q);
                assert_eq!(set.contains(&q), expected, "pair ({p}, {q})");
            }
        }
    }

    #[test]
    fn i1_i2_partition_covers_all_uncovered_pairs() {
        let g = families::layered_random(6, 10, 3, 0.4, 3);
        let f = fixture(&g, 3);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, i2) = idx.split_i1_i2();
        assert_eq!(i1.len() + i2.len(), f.rp.uncovered().len());
        // I2 is a (∼)-set by construction
        assert!(idx.is_sim_set(&i2));
        // every I1 member has a witness
        for &p in i1.iter().take(50) {
            assert!(!idx.non_sim_interference_set(p, None).is_empty());
        }
    }

    #[test]
    fn classification_is_a_partition_and_c_is_a_sim_set() {
        let g = families::erdos_renyi_gnp(70, 0.1, 11);
        let f = fixture(&g, 11);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, _i2) = idx.split_i1_i2();
        let (a, b, c) = idx.classify(&i1);
        assert_eq!(a.len() + b.len() + c.len(), i1.len());
        // Observation 4.11: the C class is a (∼)-set.
        assert!(idx.is_sim_set(&c));
        // no overlaps
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        assert!(sa.is_disjoint(&sb));
    }

    #[test]
    fn type_b_pairs_interfere_with_non_a_pairs_mutually() {
        // By Eq. 3, if p is type B its witness q is also non-A, so q is type
        // B as well (the relation restricted to non-A pairs is symmetric).
        let g = families::erdos_renyi_gnp(80, 0.09, 13);
        let f = fixture(&g, 13);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, _) = idx.split_i1_i2();
        let (a, b, _c) = idx.classify(&i1);
        let is_a: std::collections::HashSet<_> = a.iter().copied().collect();
        let is_b: std::collections::HashSet<_> = b.iter().copied().collect();
        let member: std::collections::HashSet<PairId> = i1.iter().copied().collect();
        let in_subset = |q: PairId| member.contains(&q);
        for &p in &b {
            let witnesses = idx.non_sim_interference_set(p, Some(&in_subset));
            let has_non_a_witness = witnesses.iter().any(|q| !is_a.contains(q));
            assert!(has_non_a_witness);
            for q in witnesses.iter().filter(|q| !is_a.contains(*q)) {
                assert!(
                    is_b.contains(q),
                    "witness {q} of type-B pair {p} must be type B"
                );
            }
        }
    }

    #[test]
    fn pi_intersection_requires_touching_the_other_root_path() {
        let g = families::erdos_renyi_gnp(60, 0.12, 17);
        let f = fixture(&g, 17);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let uncovered = f.rp.uncovered();
        for &p in uncovered.iter().take(25) {
            for &q in uncovered.iter().take(25) {
                if p == q {
                    continue;
                }
                let a = f.rp.get(p);
                let b = f.rp.get(q);
                if a.pair.terminal == b.pair.terminal {
                    continue;
                }
                let expected = {
                    let v = a.pair.terminal;
                    let t = b.pair.terminal;
                    let l = f.index.lca(v, t).unwrap();
                    // brute force: walk π(s, t) below the LCA and test membership
                    let pi_t: Vec<VertexId> = f.tree.path_to(t).unwrap().vertices().to_vec();
                    pi_t.iter()
                        .filter(|&&z| f.index.depth(z) > f.index.depth(l))
                        .any(|z| a.detour_vertices().contains(z))
                };
                assert_eq!(idx.pi_intersects(p, q), expected);
            }
        }
    }

    #[test]
    fn graphs_without_uncovered_pairs_classify_trivially() {
        let g = ftb_graph::generators::path(12);
        let f = fixture(&g, 19);
        let idx = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, i2) = idx.split_i1_i2();
        assert!(i1.is_empty());
        assert!(i2.is_empty());
        let (a, b, c) = idx.classify(&[]);
        assert!(a.is_empty() && b.is_empty() && c.is_empty());
        assert!(idx.is_sim_set(&[]));
    }
}
