//! Replacement paths and interference analysis (Phase S0 of the paper).
//!
//! For every vertex `v` and every failing edge `e ∈ π(s, v)`, Algorithm
//! `Pcons` fixes one canonical replacement path `P_{v,e} ∈ SP(s, v, G∖{e})`:
//!
//! 1. if some replacement path ends with an edge already in the BFS tree
//!    `T0`, pick the canonical such path (the pair is *covered*);
//! 2. otherwise the path is *new-ending* and the canonical choice is the
//!    replacement path whose (unique) divergence point from `π(s, v)` is as
//!    close to the source as possible.
//!
//! New-ending paths decompose as `P = π(s, d(P)) ∘ D(P)` where the *detour*
//! `D(P)` is vertex-disjoint from `π(s, v)` apart from its endpoints
//! (Observation 3.2). The interference analysis of Phase S1 classifies how
//! detours of different terminals intersect:
//!
//! * the `∼` relation on failing edges (both on a common root path),
//! * interference (Eq. 1): detours sharing an internal vertex,
//! * π-intersection (Fig. 2): a detour touching the other terminal's tree
//!   path below the LCA,
//! * the A/B/C typing of Eq. (2)–(3).
//!
//! This crate implements all of the above; the actual structure-building
//! phases (S1/S2) live in `ftb-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interference;
pub mod pair;
pub mod pcons;

pub use interference::{InterferenceIndex, PairType};
pub use pair::{PairId, ReplacementPath, VePair};
pub use pcons::ReplacementPaths;
