//! The versioned, length-prefixed binary wire protocol shared by
//! `ftb-serve` and `ftb-loadgen`.
//!
//! Every message travels as one *frame*: a 4-byte little-endian payload
//! length followed by the payload, whose first byte is an opcode
//! (requests `0x01..`, responses `0x81..`) and whose remaining bytes are
//! fixed-order little-endian fields. Lengths above [`MAX_FRAME_LEN`] are
//! rejected before any allocation, so a corrupt or hostile length prefix
//! cannot balloon memory.
//!
//! The session starts with a handshake: the client sends
//! [`Request::Hello`] carrying its [`PROTOCOL_VERSION`]; the server answers
//! [`Response::HelloOk`] with its own version, the graph's
//! [fingerprint](ftb_graph::Graph::fingerprint) and dimensions, and the
//! served sources. The fingerprint is the load generator's correctness
//! anchor: a client that regenerates the workload locally (same family /
//! `n` / seed) verifies it is naming vertices and edges of the *same*
//! graph before sending a single query.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`DecodeError`], and a payload must be consumed exactly (trailing bytes
//! are an error, not ignored).

use ftb_graph::{EdgeId, Fault, FaultSet, VertexId};
use std::io::{Read, Write};

/// Protocol version spoken by this build. Version 2 extended
/// [`StatsReport`] with the engine-provenance fields (`engine_source`,
/// `startup_micros`, `snapshot_format_version`). Version 3 added the
/// observability frames: [`Request::Metrics`] → [`Response::MetricsText`]
/// and [`Request::SlowQueries`] → [`Response::SlowQueries`]. Version 4
/// added the [`Request::Deadline`] wrapper (a client-supplied per-request
/// budget) and the [`ErrorCode::DeadlineExceeded`] error code.
pub const PROTOCOL_VERSION: u16 = 4;

/// Oldest client version the server still accepts. A v2 or v3 session
/// works exactly as before — newer frames are *version-gated*: an older
/// client sending [`Request::Metrics`], [`Request::SlowQueries`] or
/// [`Request::Deadline`] gets [`ErrorCode::ProtocolViolation`], never a
/// frame it cannot decode.
pub const MIN_PROTOCOL_VERSION: u16 = 2;

/// Upper bound on a frame payload; length prefixes beyond it are rejected
/// as [`DecodeError::FrameTooLarge`] before allocating.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open the session: announce the client's protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        client_version: u16,
    },
    /// Post-failure distance `dist(source, target, G ∖ faults)`.
    Dist {
        /// Source vertex (must be one the engine serves).
        source: VertexId,
        /// Target vertex.
        target: VertexId,
        /// The failed edges/vertices.
        faults: FaultSet,
    },
    /// A concrete post-failure shortest path.
    Path {
        /// Source vertex (must be one the engine serves).
        source: VertexId,
        /// Target vertex.
        target: VertexId,
        /// The failed edges/vertices.
        faults: FaultSet,
    },
    /// Many distance queries from one source in a single frame.
    BatchDist {
        /// Source vertex shared by the whole batch.
        source: VertexId,
        /// `(target, faults)` pairs, answered in order.
        queries: Vec<(VertexId, FaultSet)>,
    },
    /// One-to-many distances: one source, one shared fault set, many
    /// targets. The server answers the whole frame with a single batched
    /// unaffected classification and at most one repair sweep
    /// ([`QueryContext::dist_many_after_faults`](ftb_core::QueryContext::dist_many_after_faults)),
    /// so this is the cheapest way to ask for many distances under the
    /// same failure event.
    DistMany {
        /// Source vertex shared by every target.
        source: VertexId,
        /// Targets, answered in order.
        targets: Vec<VertexId>,
        /// The failed edges/vertices, shared by the whole frame.
        faults: FaultSet,
    },
    /// Ask for the server's aggregated query/admission counters.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Ask for the full metrics snapshot (protocol ≥ 3). Answered inline
    /// on the connection thread, like [`Request::Stats`].
    Metrics {
        /// Requested exposition format.
        format: MetricsFormat,
    },
    /// Ask for the slow-query board (protocol ≥ 3): the top-K requests by
    /// handle time, slowest first, with fault set and stage breakdown.
    SlowQueries,
    /// A query request carrying a client-supplied deadline (protocol ≥ 4).
    ///
    /// The budget starts when the server admits the job. A request whose
    /// budget expires while still queued (or between the fault-set groups
    /// of a batch) is shed with [`ErrorCode::DeadlineExceeded`] instead of
    /// burning a BFS on an answer nobody is waiting for. When the server
    /// also has a `--request-timeout-ms` budget, the *smaller* of the two
    /// wins.
    ///
    /// Only query opcodes may be wrapped ([`Request::Dist`],
    /// [`Request::Path`], [`Request::BatchDist`], [`Request::DistMany`]) —
    /// control frames are answered inline and never queue, so a deadline
    /// on them is meaningless and decoding rejects it (this also rules out
    /// nested wrappers, keeping decode depth constant).
    Deadline {
        /// The client's budget in milliseconds, measured from admission.
        budget_ms: u32,
        /// The wrapped query request.
        inner: Box<Request>,
    },
}

/// Exposition format carried by [`Request::Metrics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MetricsFormat {
    /// Prometheus text exposition format — what a scraper expects.
    Prometheus = 0,
    /// One JSON object keyed by `name{labels}` — what
    /// `ftb-loadgen --metrics-out` writes for trajectory tooling.
    Json = 1,
}

impl Request {
    /// The lowest protocol version a session must have negotiated for this
    /// request to be legal; older sessions get
    /// [`ErrorCode::ProtocolViolation`].
    pub fn min_version(&self) -> u16 {
        match self {
            Request::Metrics { .. } | Request::SlowQueries => 3,
            Request::Deadline { .. } => 4,
            _ => MIN_PROTOCOL_VERSION,
        }
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
        /// [`Graph::fingerprint`](ftb_graph::Graph::fingerprint) of the
        /// served graph.
        fingerprint: u64,
        /// Vertex count of the served graph.
        num_vertices: u32,
        /// Edge count of the served graph.
        num_edges: u32,
        /// The sources the engine can answer from.
        sources: Vec<VertexId>,
    },
    /// Distance answer; `None` means the faults disconnect the target.
    Dist(Option<u32>),
    /// Path answer; `None` means the faults disconnect the target.
    Path(Option<WirePath>),
    /// Batched distance answers, in request order.
    BatchDist(Vec<Option<u32>>),
    /// One-to-many distance answers, in target order.
    DistMany(Vec<Option<u32>>),
    /// Aggregated server counters.
    Stats(StatsReport),
    /// Acknowledgement of a [`Request::Shutdown`]; the connection closes
    /// after this frame.
    ShuttingDown,
    /// The bounded request queue was full: the request was **shed**, not
    /// buffered. The client may retry; the server made no progress on it.
    Overloaded,
    /// The request was invalid; `code` is an [`ErrorCode`] discriminant.
    Error {
        /// Machine-readable [`ErrorCode`] as `u16`.
        code: u16,
        /// Human-readable context.
        message: String,
    },
    /// The rendered metrics snapshot (protocol ≥ 3), in the format the
    /// request named.
    MetricsText(String),
    /// The slow-query board (protocol ≥ 3), slowest first.
    SlowQueries(Vec<SlowQueryReport>),
}

/// One slow-query board entry: which request it was, what it touched, and
/// where its nanoseconds went (queue wait / worker handle / response
/// encode) plus the per-tier answer counts the engine recorded for it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowQueryReport {
    /// Request opcode (`0x02` Dist, `0x03` Path, `0x04` BatchDist,
    /// `0x07` DistMany).
    pub opcode: u8,
    /// The query's source vertex.
    pub source: VertexId,
    /// Number of targets the request carried (1 for Dist/Path).
    pub targets: u32,
    /// The fault set the request named.
    pub faults: FaultSet,
    /// Nanoseconds spent queued before a worker picked the job up.
    pub queue_nanos: u64,
    /// Nanoseconds the worker spent computing the answer (the board's
    /// ranking key).
    pub handle_nanos: u64,
    /// Nanoseconds the connection thread spent encoding the response.
    pub encode_nanos: u64,
    /// Per-tier answer counts, in [`StatsReport`] tier order:
    /// `fault_free_row`, `unaffected_fast_path`, `batched_unaffected`,
    /// `sparse_h_bfs`, `augmented_bfs`, `full_graph_bfs`.
    pub tiers: [u64; 6],
}

/// A path as transported on the wire: the vertex sequence and the edge ids
/// connecting consecutive vertices (`edges.len() + 1 == vertices.len()`,
/// enforced at decode time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WirePath {
    /// Vertex sequence from source to target.
    pub vertices: Vec<VertexId>,
    /// Edge ids connecting consecutive vertices.
    pub edges: Vec<EdgeId>,
}

/// The counters a [`Request::Stats`] returns: the merged
/// [`QueryStats`](ftb_core::QueryStats) of every worker plus the server's
/// admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Total queries answered.
    pub queries: u64,
    /// BFS sweeps over the structure CSR.
    pub structure_bfs_runs: u64,
    /// BFS sweeps over the augmented CSR.
    pub augmented_bfs_runs: u64,
    /// Full-graph BFS fallback sweeps.
    pub full_graph_bfs_runs: u64,
    /// Queries answered from an already-computed row.
    pub cached_answers: u64,
    /// Cache misses served by incremental row repair.
    pub repaired_rows: u64,
    /// Cache misses served by a target-restricted repair sweep (one-to-many
    /// queries whose affected targets were few).
    pub restricted_repairs: u64,
    /// Tier: answered from the fault-free row.
    pub tier_fault_free_row: u64,
    /// Tier: provably-unaffected fast path.
    pub tier_unaffected_fast_path: u64,
    /// Tier: targets classified unaffected by the batched one-to-many
    /// interval search (counted per target).
    pub tier_batched_unaffected: u64,
    /// Tier: sparse BFS over `H ∖ {e}`.
    pub tier_sparse_h_bfs: u64,
    /// Tier: BFS over the augmented CSR `H⁺ ∖ F`.
    pub tier_augmented_bfs: u64,
    /// Tier: full-graph fallback.
    pub tier_full_graph_bfs: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests shed with [`Response::Overloaded`].
    pub shed: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Where the engine came from: 0 = built in-process from the spec,
    /// 1 = loaded from a persistent snapshot.
    pub engine_source: u64,
    /// Wall time from process start to ready-to-serve, in microseconds
    /// (the preprocessing cost under `engine_source = 0`, the snapshot
    /// load cost under `engine_source = 1`).
    pub startup_micros: u64,
    /// The snapshot container format version
    /// ([`ftb_core::SNAPSHOT_FORMAT_VERSION`]) when loaded from one,
    /// `0` when freshly built.
    pub snapshot_format_version: u64,
}

/// Machine-readable error codes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// A vertex id outside the graph.
    VertexOutOfRange = 1,
    /// An edge id outside the graph.
    EdgeOutOfRange = 2,
    /// A fault naming a vertex/edge outside the graph.
    InvalidFault = 3,
    /// More simultaneous faults than the engine's configured cap.
    FaultSetTooLarge = 4,
    /// A source the engine was not built for.
    SourceNotServed = 5,
    /// The client's frame could not be decoded.
    MalformedFrame = 6,
    /// A protocol-state violation (e.g. queries before `Hello`, or a
    /// version the server does not speak).
    ProtocolViolation = 7,
    /// Any other engine-side failure.
    Internal = 8,
    /// The request's deadline (client-supplied or `--request-timeout-ms`)
    /// expired before the server computed the answer; no work was wasted
    /// on it. Distinct from [`ErrorCode::Internal`] (something broke) and
    /// from [`Response::Overloaded`] (the queue refused admission).
    DeadlineExceeded = 9,
}

impl ErrorCode {
    /// Recover the code from its wire representation.
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::VertexOutOfRange,
            2 => ErrorCode::EdgeOutOfRange,
            3 => ErrorCode::InvalidFault,
            4 => ErrorCode::FaultSetTooLarge,
            5 => ErrorCode::SourceNotServed,
            6 => ErrorCode::MalformedFrame,
            7 => ErrorCode::ProtocolViolation,
            8 => ErrorCode::Internal,
            9 => ErrorCode::DeadlineExceeded,
            _ => return None,
        })
    }

    /// The code a given engine error maps to.
    pub fn from_engine_error(err: &ftb_core::FtbfsError) -> ErrorCode {
        use ftb_core::FtbfsError::*;
        match err {
            VertexOutOfRange { .. } => ErrorCode::VertexOutOfRange,
            EdgeOutOfRange { .. } => ErrorCode::EdgeOutOfRange,
            InvalidFault { .. } => ErrorCode::InvalidFault,
            FaultSetTooLarge { .. } => ErrorCode::FaultSetTooLarge,
            SourceNotServed { .. } => ErrorCode::SourceNotServed,
            _ => ErrorCode::Internal,
        }
    }
}

/// Why a payload failed to decode. Decoding is total: every byte string
/// maps to `Ok` or to one of these — never to a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the message did. Every strict prefix of a
    /// valid payload decodes to this.
    Truncated,
    /// A length prefix beyond [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// The first byte is not a known opcode for this direction.
    UnknownOpcode(u8),
    /// The message decoded but bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An enum tag (fault kind, option flag) held an undefined value.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            DecodeError::BadTag(tag) => write!(f, "undefined tag value {tag}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(opcode: u8) -> Self {
        Enc { buf: vec![opcode] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn faults(&mut self, faults: &FaultSet) {
        debug_assert!(faults.len() <= u8::MAX as usize, "fault cap fits in u8");
        self.u8(faults.len() as u8);
        for fault in faults.iter() {
            match fault {
                Fault::Edge(e) => {
                    self.u8(0);
                    self.u32(e.0);
                }
                Fault::Vertex(v) => {
                    self.u8(1);
                    self.u32(v.0);
                }
            }
        }
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(d) => {
                self.u8(1);
                self.u32(d);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Encode a request payload (opcode + fields, **without** length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e;
    match req {
        Request::Hello { client_version } => {
            e = Enc::new(0x01);
            e.u16(*client_version);
        }
        Request::Dist {
            source,
            target,
            faults,
        } => {
            e = Enc::new(0x02);
            e.u32(source.0);
            e.u32(target.0);
            e.faults(faults);
        }
        Request::Path {
            source,
            target,
            faults,
        } => {
            e = Enc::new(0x03);
            e.u32(source.0);
            e.u32(target.0);
            e.faults(faults);
        }
        Request::BatchDist { source, queries } => {
            e = Enc::new(0x04);
            e.u32(source.0);
            e.u32(queries.len() as u32);
            for (target, faults) in queries {
                e.u32(target.0);
                e.faults(faults);
            }
        }
        Request::Stats => e = Enc::new(0x05),
        Request::Shutdown => e = Enc::new(0x06),
        Request::DistMany {
            source,
            targets,
            faults,
        } => {
            e = Enc::new(0x07);
            e.u32(source.0);
            e.u32(targets.len() as u32);
            for t in targets {
                e.u32(t.0);
            }
            e.faults(faults);
        }
        Request::Metrics { format } => {
            e = Enc::new(0x08);
            e.u8(*format as u8);
        }
        Request::SlowQueries => e = Enc::new(0x09),
        Request::Deadline { budget_ms, inner } => {
            e = Enc::new(0x0A);
            e.u32(*budget_ms);
            e.buf.extend_from_slice(&encode_request(inner));
        }
    }
    e.buf
}

/// Encode a response payload (opcode + fields, **without** length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e;
    match resp {
        Response::HelloOk {
            version,
            fingerprint,
            num_vertices,
            num_edges,
            sources,
        } => {
            e = Enc::new(0x81);
            e.u16(*version);
            e.u64(*fingerprint);
            e.u32(*num_vertices);
            e.u32(*num_edges);
            e.u32(sources.len() as u32);
            for s in sources {
                e.u32(s.0);
            }
        }
        Response::Dist(d) => {
            e = Enc::new(0x82);
            e.opt_u32(*d);
        }
        Response::Path(p) => {
            e = Enc::new(0x83);
            match p {
                None => e.u8(0),
                Some(path) => {
                    e.u8(1);
                    e.u32(path.vertices.len() as u32);
                    for v in &path.vertices {
                        e.u32(v.0);
                    }
                    for eid in &path.edges {
                        e.u32(eid.0);
                    }
                }
            }
        }
        Response::BatchDist(ds) => {
            e = Enc::new(0x84);
            e.u32(ds.len() as u32);
            for d in ds {
                e.opt_u32(*d);
            }
        }
        Response::Stats(s) => {
            e = Enc::new(0x85);
            for v in [
                s.queries,
                s.structure_bfs_runs,
                s.augmented_bfs_runs,
                s.full_graph_bfs_runs,
                s.cached_answers,
                s.repaired_rows,
                s.restricted_repairs,
                s.tier_fault_free_row,
                s.tier_unaffected_fast_path,
                s.tier_batched_unaffected,
                s.tier_sparse_h_bfs,
                s.tier_augmented_bfs,
                s.tier_full_graph_bfs,
                s.accepted,
                s.shed,
                s.connections,
                s.engine_source,
                s.startup_micros,
                s.snapshot_format_version,
            ] {
                e.u64(v);
            }
        }
        Response::DistMany(ds) => {
            e = Enc::new(0x87);
            e.u32(ds.len() as u32);
            for d in ds {
                e.opt_u32(*d);
            }
        }
        Response::ShuttingDown => e = Enc::new(0x86),
        Response::MetricsText(text) => {
            e = Enc::new(0x88);
            e.str(text);
        }
        Response::SlowQueries(entries) => {
            e = Enc::new(0x89);
            e.u32(entries.len() as u32);
            for q in entries {
                e.u8(q.opcode);
                e.u32(q.source.0);
                e.u32(q.targets);
                e.faults(&q.faults);
                e.u64(q.queue_nanos);
                e.u64(q.handle_nanos);
                e.u64(q.encode_nanos);
                for &t in &q.tiers {
                    e.u64(t);
                }
            }
        }
        Response::Overloaded => e = Enc::new(0x8E),
        Response::Error { code, message } => {
            e = Enc::new(0x8F);
            e.u16(*code);
            e.str(message);
        }
    }
    e.buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn faults(&mut self) -> Result<FaultSet, DecodeError> {
        let count = self.u8()? as usize;
        let mut set = FaultSet::new();
        for _ in 0..count {
            let kind = self.u8()?;
            let id = self.u32()?;
            match kind {
                0 => set.insert(Fault::Edge(EdgeId(id))),
                1 => set.insert(Fault::Vertex(VertexId(id))),
                other => return Err(DecodeError::BadTag(other)),
            };
        }
        Ok(set)
    }
    fn opt_u32(&mut self) -> Result<Option<u32>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            other => Err(DecodeError::BadTag(other)),
        }
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.buf.len() - self.pos,
            })
        }
    }
}

/// Decode a request payload. The whole slice must be consumed.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut d = Dec::new(payload);
    let req = match d.u8()? {
        0x01 => Request::Hello {
            client_version: d.u16()?,
        },
        0x02 => Request::Dist {
            source: VertexId(d.u32()?),
            target: VertexId(d.u32()?),
            faults: d.faults()?,
        },
        0x03 => Request::Path {
            source: VertexId(d.u32()?),
            target: VertexId(d.u32()?),
            faults: d.faults()?,
        },
        0x04 => {
            let source = VertexId(d.u32()?);
            let count = d.u32()? as usize;
            // Cap pre-allocation by what the payload could possibly hold
            // (each query is ≥ 5 bytes): a lying count cannot OOM us.
            let mut queries = Vec::with_capacity(count.min(payload.len() / 5 + 1));
            for _ in 0..count {
                let target = VertexId(d.u32()?);
                let faults = d.faults()?;
                queries.push((target, faults));
            }
            Request::BatchDist { source, queries }
        }
        0x05 => Request::Stats,
        0x06 => Request::Shutdown,
        0x07 => {
            let source = VertexId(d.u32()?);
            let count = d.u32()? as usize;
            // Same lying-count guard as BatchDist: each target is 4 bytes.
            let mut targets = Vec::with_capacity(count.min(payload.len() / 4 + 1));
            for _ in 0..count {
                targets.push(VertexId(d.u32()?));
            }
            let faults = d.faults()?;
            Request::DistMany {
                source,
                targets,
                faults,
            }
        }
        0x08 => Request::Metrics {
            format: match d.u8()? {
                0 => MetricsFormat::Prometheus,
                1 => MetricsFormat::Json,
                other => return Err(DecodeError::BadTag(other)),
            },
        },
        0x09 => Request::SlowQueries,
        0x0A => {
            let budget_ms = d.u32()?;
            // Check the wrapped opcode *before* recursing: only query
            // opcodes are legal inside a deadline, which both enforces the
            // protocol rule (control frames never queue) and bounds decode
            // depth at one — a nested-0x0A bomb cannot recurse.
            let rest = &payload[d.pos..];
            match rest.first() {
                None => return Err(DecodeError::Truncated),
                Some(0x02 | 0x03 | 0x04 | 0x07) => {}
                Some(&op) => return Err(DecodeError::BadTag(op)),
            }
            let inner = decode_request(rest)?;
            d.pos = payload.len();
            Request::Deadline {
                budget_ms,
                inner: Box::new(inner),
            }
        }
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    d.finish()?;
    Ok(req)
}

/// Decode a response payload. The whole slice must be consumed.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut d = Dec::new(payload);
    let resp = match d.u8()? {
        0x81 => {
            let version = d.u16()?;
            let fingerprint = d.u64()?;
            let num_vertices = d.u32()?;
            let num_edges = d.u32()?;
            let count = d.u32()? as usize;
            let mut sources = Vec::with_capacity(count.min(payload.len() / 4 + 1));
            for _ in 0..count {
                sources.push(VertexId(d.u32()?));
            }
            Response::HelloOk {
                version,
                fingerprint,
                num_vertices,
                num_edges,
                sources,
            }
        }
        0x82 => Response::Dist(d.opt_u32()?),
        0x83 => match d.u8()? {
            0 => Response::Path(None),
            1 => {
                let nv = d.u32()? as usize;
                if nv == 0 {
                    return Err(DecodeError::BadTag(1));
                }
                let cap = nv.min(payload.len() / 4 + 1);
                let mut vertices = Vec::with_capacity(cap);
                for _ in 0..nv {
                    vertices.push(VertexId(d.u32()?));
                }
                let mut edges = Vec::with_capacity(cap);
                for _ in 0..nv - 1 {
                    edges.push(EdgeId(d.u32()?));
                }
                Response::Path(Some(WirePath { vertices, edges }))
            }
            other => return Err(DecodeError::BadTag(other)),
        },
        0x84 => {
            let count = d.u32()? as usize;
            let mut ds = Vec::with_capacity(count.min(payload.len() + 1));
            for _ in 0..count {
                ds.push(d.opt_u32()?);
            }
            Response::BatchDist(ds)
        }
        0x85 => {
            let mut vals = [0u64; 19];
            for v in vals.iter_mut() {
                *v = d.u64()?;
            }
            Response::Stats(StatsReport {
                queries: vals[0],
                structure_bfs_runs: vals[1],
                augmented_bfs_runs: vals[2],
                full_graph_bfs_runs: vals[3],
                cached_answers: vals[4],
                repaired_rows: vals[5],
                restricted_repairs: vals[6],
                tier_fault_free_row: vals[7],
                tier_unaffected_fast_path: vals[8],
                tier_batched_unaffected: vals[9],
                tier_sparse_h_bfs: vals[10],
                tier_augmented_bfs: vals[11],
                tier_full_graph_bfs: vals[12],
                accepted: vals[13],
                shed: vals[14],
                connections: vals[15],
                engine_source: vals[16],
                startup_micros: vals[17],
                snapshot_format_version: vals[18],
            })
        }
        0x86 => Response::ShuttingDown,
        0x87 => {
            let count = d.u32()? as usize;
            let mut ds = Vec::with_capacity(count.min(payload.len() + 1));
            for _ in 0..count {
                ds.push(d.opt_u32()?);
            }
            Response::DistMany(ds)
        }
        0x88 => Response::MetricsText(d.str()?),
        0x89 => {
            let count = d.u32()? as usize;
            // Each entry is ≥ 82 bytes; a lying count cannot OOM us.
            let mut entries = Vec::with_capacity(count.min(payload.len() / 82 + 1));
            for _ in 0..count {
                let opcode = d.u8()?;
                let source = VertexId(d.u32()?);
                let targets = d.u32()?;
                let faults = d.faults()?;
                let queue_nanos = d.u64()?;
                let handle_nanos = d.u64()?;
                let encode_nanos = d.u64()?;
                let mut tiers = [0u64; 6];
                for t in tiers.iter_mut() {
                    *t = d.u64()?;
                }
                entries.push(SlowQueryReport {
                    opcode,
                    source,
                    targets,
                    faults,
                    queue_nanos,
                    handle_nanos,
                    encode_nanos,
                    tiers,
                });
            }
            Response::SlowQueries(entries)
        }
        0x8E => Response::Overloaded,
        0x8F => Response::Error {
            code: d.u16()?,
            message: d.str()?,
        },
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    d.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Write one frame (length prefix + payload) to `w`.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — a server-side encoding
/// bug, not a peer-controlled condition.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_LEN, "oversized outgoing frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload from `r` (blocking).
///
/// Returns `Ok(None)` on clean EOF at a frame boundary. A length prefix
/// beyond [`MAX_FRAME_LEN`] or EOF mid-frame becomes an
/// `InvalidData` error.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read(&mut len_bytes)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let got = r.read(&mut len_bytes[n..])?;
                if got == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "EOF inside frame length prefix",
                    ));
                }
                n += got;
            }
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            DecodeError::FrameTooLarge { len }.to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_faults() -> FaultSet {
        let mut f = FaultSet::new();
        f.insert(Fault::Edge(EdgeId(3)));
        f.insert(Fault::Vertex(VertexId(7)));
        f
    }

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Hello {
                client_version: PROTOCOL_VERSION,
            },
            Request::Dist {
                source: VertexId(0),
                target: VertexId(9),
                faults: sample_faults(),
            },
            Request::Path {
                source: VertexId(2),
                target: VertexId(5),
                faults: FaultSet::new(),
            },
            Request::BatchDist {
                source: VertexId(0),
                queries: vec![
                    (VertexId(1), FaultSet::new()),
                    (VertexId(2), sample_faults()),
                ],
            },
            Request::DistMany {
                source: VertexId(0),
                targets: vec![VertexId(1), VertexId(4), VertexId(2)],
                faults: sample_faults(),
            },
            Request::DistMany {
                source: VertexId(3),
                targets: vec![],
                faults: FaultSet::new(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Metrics {
                format: MetricsFormat::Json,
            },
            Request::SlowQueries,
            Request::Deadline {
                budget_ms: 250,
                inner: Box::new(Request::Dist {
                    source: VertexId(0),
                    target: VertexId(9),
                    faults: sample_faults(),
                }),
            },
            Request::Deadline {
                budget_ms: 0,
                inner: Box::new(Request::BatchDist {
                    source: VertexId(1),
                    queries: vec![(VertexId(2), sample_faults())],
                }),
            },
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn deadline_wraps_only_query_opcodes() {
        // Control frames inside a deadline are rejected at decode time…
        for inner in [
            Request::Hello { client_version: 4 },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics {
                format: MetricsFormat::Json,
            },
            Request::SlowQueries,
        ] {
            let bytes = encode_request(&Request::Deadline {
                budget_ms: 10,
                inner: Box::new(inner.clone()),
            });
            let op = encode_request(&inner)[0];
            assert_eq!(
                decode_request(&bytes),
                Err(DecodeError::BadTag(op)),
                "{inner:?}"
            );
        }
        // …and so is a nested deadline: decode depth is bounded at one.
        let nested = encode_request(&Request::Deadline {
            budget_ms: 1,
            inner: Box::new(Request::Deadline {
                budget_ms: 2,
                inner: Box::new(Request::Stats),
            }),
        });
        assert_eq!(decode_request(&nested), Err(DecodeError::BadTag(0x0A)));
    }

    #[test]
    fn deadline_prefixes_decode_to_truncated() {
        let bytes = encode_request(&Request::Deadline {
            budget_ms: 99,
            inner: Box::new(Request::DistMany {
                source: VertexId(0),
                targets: vec![VertexId(1), VertexId(2)],
                faults: sample_faults(),
            }),
        });
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_request(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "prefix of {cut} bytes"
            );
        }
        // Trailing bytes after the wrapped request are still rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_request(&padded),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn deadline_is_version_gated_at_v4() {
        let req = Request::Deadline {
            budget_ms: 5,
            inner: Box::new(Request::Dist {
                source: VertexId(0),
                target: VertexId(1),
                faults: FaultSet::new(),
            }),
        };
        assert_eq!(req.min_version(), 4);
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::HelloOk {
                version: 1,
                fingerprint: 0xdead_beef_cafe_f00d,
                num_vertices: 100,
                num_edges: 250,
                sources: vec![VertexId(0), VertexId(50)],
            },
            Response::Dist(Some(4)),
            Response::Dist(None),
            Response::Path(Some(WirePath {
                vertices: vec![VertexId(0), VertexId(3), VertexId(9)],
                edges: vec![EdgeId(1), EdgeId(8)],
            })),
            Response::Path(None),
            Response::BatchDist(vec![Some(1), None, Some(3)]),
            Response::DistMany(vec![None, Some(0), Some(7)]),
            Response::Stats(StatsReport {
                queries: 10,
                restricted_repairs: 3,
                tier_batched_unaffected: 5,
                shed: 2,
                engine_source: 1,
                startup_micros: 12_345,
                snapshot_format_version: 1,
                ..Default::default()
            }),
            Response::ShuttingDown,
            Response::Overloaded,
            Response::MetricsText("# HELP ftb_requests_total requests\n".to_string()),
            Response::SlowQueries(vec![
                SlowQueryReport {
                    opcode: 0x07,
                    source: VertexId(0),
                    targets: 128,
                    faults: sample_faults(),
                    queue_nanos: 1_500,
                    handle_nanos: 2_000_000,
                    encode_nanos: 900,
                    tiers: [100, 20, 5, 2, 1, 0],
                },
                SlowQueryReport::default(),
            ]),
            Response::SlowQueries(Vec::new()),
            Response::Error {
                code: ErrorCode::VertexOutOfRange as u16,
                message: "vertex 999 out of range".to_string(),
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn strict_prefixes_decode_to_truncated() {
        for req in [
            Request::BatchDist {
                source: VertexId(1),
                queries: vec![(VertexId(2), sample_faults())],
            },
            Request::DistMany {
                source: VertexId(1),
                targets: vec![VertexId(2), VertexId(3)],
                faults: sample_faults(),
            },
        ] {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert_eq!(
                    decode_request(&bytes[..cut]),
                    Err(DecodeError::Truncated),
                    "prefix of {cut} bytes of {req:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request::Stats);
        bytes.push(0);
        assert_eq!(
            decode_request(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn unknown_opcodes_and_tags_are_rejected() {
        assert_eq!(
            decode_request(&[0x7f]),
            Err(DecodeError::UnknownOpcode(0x7f))
        );
        assert_eq!(
            decode_response(&[0x01]),
            Err(DecodeError::UnknownOpcode(0x01))
        );
        // Dist with a fault of kind 9.
        let mut bytes = vec![0x02];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.push(1); // one fault
        bytes.push(9); // undefined kind
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_request(&bytes), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn frame_io_round_trips_and_caps_length() {
        let payload = encode_request(&Request::Hello { client_version: 1 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(&wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");

        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(&huge[..]);
        assert!(read_frame(&mut cursor).is_err(), "oversized length prefix");
    }

    #[test]
    fn v3_frames_are_version_gated() {
        assert_eq!(
            Request::Metrics {
                format: MetricsFormat::Prometheus
            }
            .min_version(),
            3
        );
        assert_eq!(Request::SlowQueries.min_version(), 3);
        for v2_req in [
            Request::Hello { client_version: 2 },
            Request::Stats,
            Request::Shutdown,
            Request::Dist {
                source: VertexId(0),
                target: VertexId(1),
                faults: FaultSet::new(),
            },
        ] {
            assert_eq!(v2_req.min_version(), MIN_PROTOCOL_VERSION, "{v2_req:?}");
        }
    }

    #[test]
    fn v3_frame_prefixes_decode_to_truncated() {
        let resp = Response::SlowQueries(vec![SlowQueryReport {
            opcode: 0x02,
            source: VertexId(3),
            targets: 1,
            faults: sample_faults(),
            queue_nanos: 10,
            handle_nanos: 20,
            encode_nanos: 30,
            tiers: [1, 0, 0, 0, 0, 0],
        }]);
        let bytes = encode_response(&resp);
        for cut in 1..bytes.len() {
            assert_eq!(
                decode_response(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "prefix of {cut} bytes"
            );
        }
        // Undefined metrics format tag.
        assert_eq!(decode_request(&[0x08, 9]), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn engine_errors_map_to_codes() {
        let err = ftb_core::FtbfsError::VertexOutOfRange {
            vertex: VertexId(9),
            num_vertices: 4,
        };
        assert_eq!(
            ErrorCode::from_engine_error(&err),
            ErrorCode::VertexOutOfRange
        );
        for code in [1u16, 2, 3, 4, 5, 6, 7, 8, 9] {
            let ec = ErrorCode::from_u16(code).expect("defined code");
            assert_eq!(ec as u16, code);
        }
        assert_eq!(ErrorCode::from_u16(999), None);
    }
}
