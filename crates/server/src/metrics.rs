//! The server's metric surface: one [`Registry`] holding the request
//! counters, connection/queue gauges, per-stage latency histograms, the
//! engine's [`EngineObs`] families, and the slow-query board.
//!
//! # Where each number comes from
//!
//! * **Workers** record queue wait (enqueue → pickup) and handle time
//!   into shared registry histograms — lock-free relaxed atomics, safe on
//!   the job path.
//! * **Connection threads** get a private [`ConnCell`] each: decode and
//!   encode time land in per-thread histogram cells, not shared series.
//!   This closes the old blind spot where connection-thread work was
//!   invisible to `Stats` (which is answered *on* the connection thread):
//!   the cells are merged into the registry snapshot at scrape time via
//!   [`Registry::histogram_fn`], live cells and retired (closed
//!   connection) totals alike, so totals are monotone across connection
//!   churn.
//! * **Reap events** (idle expiry, malformed frames, I/O errors) are
//!   labelled counters bumped by the connection thread that observed the
//!   reason.
//!
//! The same registry renders both exposition formats: Prometheus text for
//! scrapers (the `--metrics-addr` listener and the `Metrics` wire frame)
//! and JSON for `ftb-loadgen --metrics-out`.

use crate::protocol::{Request, SlowQueryReport};
use ftb_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, SlowLog};
use std::sync::{Arc, Mutex};

/// Default capacity of the slow-query board.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 32;

/// Shared per-connection histogram cells plus the folded totals of
/// connections that already closed. `merged()` is the scrape-time view.
struct CellSet {
    /// Cells of currently-open connections.
    live: Mutex<Vec<Arc<Histogram>>>,
    /// Folded totals of closed connections, so counts stay monotone.
    retired: Mutex<HistogramSnapshot>,
}

impl CellSet {
    fn new() -> Arc<CellSet> {
        Arc::new(CellSet {
            live: Mutex::new(Vec::new()),
            retired: Mutex::new(HistogramSnapshot::empty()),
        })
    }

    fn open(self: &Arc<Self>) -> Arc<Histogram> {
        let cell = Arc::new(Histogram::new());
        self.live
            .lock()
            .expect("cell set poisoned")
            .push(Arc::clone(&cell));
        cell
    }

    fn close(&self, cell: &Arc<Histogram>) {
        let mut live = self.live.lock().expect("cell set poisoned");
        if let Some(i) = live.iter().position(|c| Arc::ptr_eq(c, cell)) {
            let cell = live.swap_remove(i);
            drop(live);
            self.retired
                .lock()
                .expect("cell set poisoned")
                .merge(&cell.snapshot());
        }
    }

    fn merged(&self) -> HistogramSnapshot {
        let mut out = self.retired.lock().expect("cell set poisoned").clone();
        for cell in self.live.lock().expect("cell set poisoned").iter() {
            out.merge(&cell.snapshot());
        }
        out
    }
}

/// One connection thread's private metric cells. Created per connection
/// via [`ServerMetrics::conn_cell`]; dropping it folds the cells into the
/// retired totals so nothing is lost when the connection closes.
pub struct ConnCell {
    /// Nanoseconds spent decoding request frames on this connection.
    pub decode: Arc<Histogram>,
    /// Nanoseconds spent encoding response frames on this connection.
    pub encode: Arc<Histogram>,
    decode_set: Arc<CellSet>,
    encode_set: Arc<CellSet>,
}

impl Drop for ConnCell {
    fn drop(&mut self) {
        self.decode_set.close(&self.decode);
        self.encode_set.close(&self.encode);
    }
}

/// The server-layer metric handles, all registered in one [`Registry`]
/// together with the engine's [`EngineObs`](ftb_core::EngineObs) families.
pub struct ServerMetrics {
    registry: Registry,

    /// `ftb_requests_total{op=...}` — one counter per request kind.
    pub req_hello: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_dist: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_path: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_batch_dist: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_dist_many: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_stats: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_metrics: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_slow_queries: Arc<Counter>,
    /// See [`ServerMetrics::req_hello`].
    pub req_shutdown: Arc<Counter>,

    /// `ftb_requests_shed_total` — answered `Overloaded` (queue full).
    pub shed_total: Arc<Counter>,
    /// `ftb_requests_deadline_exceeded_total` — shed with
    /// `DeadlineExceeded` before compute (expired in queue or mid-batch).
    pub deadline_exceeded_total: Arc<Counter>,
    /// `ftb_thread_panics_total{thread="accept"}`.
    pub thread_panics_accept: Arc<Counter>,
    /// `ftb_thread_panics_total{thread="worker"}` — caught in the request
    /// handler or fatal to the worker thread alike.
    pub thread_panics_worker: Arc<Counter>,
    /// `ftb_thread_panics_total{thread="metrics"}`.
    pub thread_panics_metrics: Arc<Counter>,
    /// `ftb_worker_respawns_total` — workers given a fresh `QueryContext`
    /// after a panic (in-place after a caught handler panic, or a full
    /// thread respawn by the supervisor).
    pub worker_respawns: Arc<Counter>,
    /// `ftb_accept_errors_total` — failed `accept` calls (transient OS
    /// errors and injected faults); the loop keeps serving through them.
    pub accept_errors_total: Arc<Counter>,
    /// `ftb_connections_total` — connections accepted over the lifetime.
    pub connections_total: Arc<Counter>,
    /// `ftb_decode_errors_total` — frames that failed to decode.
    pub decode_errors_total: Arc<Counter>,
    /// `ftb_connections_reaped_total{reason="idle"}`.
    pub reaped_idle: Arc<Counter>,
    /// `ftb_connections_reaped_total{reason="malformed"}`.
    pub reaped_malformed: Arc<Counter>,
    /// `ftb_connections_reaped_total{reason="io_error"}`.
    pub reaped_io_error: Arc<Counter>,

    /// `ftb_connections_active` — currently-open connections.
    pub connections_active: Arc<Gauge>,
    /// `ftb_queue_depth` — jobs admitted and not yet picked up.
    pub queue_depth: Arc<Gauge>,

    /// `ftb_request_queue_wait_seconds` — enqueue → worker pickup.
    pub queue_wait: Arc<Histogram>,
    /// `ftb_request_handle_seconds` — worker compute time per job.
    pub handle: Arc<Histogram>,

    decode_cells: Arc<CellSet>,
    encode_cells: Arc<CellSet>,

    /// The slow-query board, ranked by handle nanoseconds.
    pub slow_log: SlowLog<SlowQueryReport>,
}

impl ServerMetrics {
    /// Build the full metric set in a fresh registry.
    pub fn new(slow_log_capacity: usize) -> Arc<ServerMetrics> {
        let r = Registry::new();
        let req_help = "Requests received, by decoded request kind";
        let req = |op: &str| r.counter("ftb_requests_total", req_help, &[("op", op)]);
        let reaped_help = "Connections closed by the server, by reason";
        let reaped = |why: &str| {
            r.counter(
                "ftb_connections_reaped_total",
                reaped_help,
                &[("reason", why)],
            )
        };

        let panic_help = "Server threads that panicked, by thread role";
        let panics =
            |thread: &str| r.counter("ftb_thread_panics_total", panic_help, &[("thread", thread)]);

        let decode_cells = CellSet::new();
        let encode_cells = CellSet::new();
        let decode_view = Arc::clone(&decode_cells);
        let encode_view = Arc::clone(&encode_cells);
        r.histogram_fn(
            "ftb_connection_decode_seconds",
            "Request-frame decode time, merged from per-connection cells",
            &[],
            Box::new(move || decode_view.merged()),
        );
        r.histogram_fn(
            "ftb_response_encode_seconds",
            "Response-frame encode time, merged from per-connection cells",
            &[],
            Box::new(move || encode_view.merged()),
        );

        Arc::new(ServerMetrics {
            req_hello: req("hello"),
            req_dist: req("dist"),
            req_path: req("path"),
            req_batch_dist: req("batch_dist"),
            req_dist_many: req("dist_many"),
            req_stats: req("stats"),
            req_metrics: req("metrics"),
            req_slow_queries: req("slow_queries"),
            req_shutdown: req("shutdown"),
            shed_total: r.counter(
                "ftb_requests_shed_total",
                "Requests shed with Overloaded (bounded queue full)",
                &[],
            ),
            deadline_exceeded_total: r.counter(
                "ftb_requests_deadline_exceeded_total",
                "Requests shed with DeadlineExceeded before compute",
                &[],
            ),
            thread_panics_accept: panics("accept"),
            thread_panics_worker: panics("worker"),
            thread_panics_metrics: panics("metrics"),
            worker_respawns: r.counter(
                "ftb_worker_respawns_total",
                "Workers respawned with a fresh QueryContext after a panic",
                &[],
            ),
            accept_errors_total: r.counter(
                "ftb_accept_errors_total",
                "Failed accept calls survived by the accept loop",
                &[],
            ),
            connections_total: r.counter(
                "ftb_connections_total",
                "Connections accepted over the server's lifetime",
                &[],
            ),
            decode_errors_total: r.counter(
                "ftb_decode_errors_total",
                "Request frames that failed to decode",
                &[],
            ),
            reaped_idle: reaped("idle"),
            reaped_malformed: reaped("malformed"),
            reaped_io_error: reaped("io_error"),
            connections_active: r.gauge(
                "ftb_connections_active",
                "Currently-open client connections",
                &[],
            ),
            queue_depth: r.gauge(
                "ftb_queue_depth",
                "Jobs admitted to the bounded queue and not yet picked up",
                &[],
            ),
            queue_wait: r.histogram(
                "ftb_request_queue_wait_seconds",
                "Time from queue admission to worker pickup",
                &[],
            ),
            handle: r.histogram(
                "ftb_request_handle_seconds",
                "Worker compute time per job",
                &[],
            ),
            decode_cells,
            encode_cells,
            slow_log: SlowLog::new(slow_log_capacity),
            registry: r,
        })
    }

    /// The registry everything is registered in — for adding more families
    /// (the engine's [`EngineObs`](ftb_core::EngineObs), build-phase
    /// gauges) and for rendering.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Open a fresh per-connection cell pair. Drop it when the connection
    /// closes; its totals are folded into the retired accumulator.
    pub fn conn_cell(&self) -> ConnCell {
        ConnCell {
            decode: self.decode_cells.open(),
            encode: self.encode_cells.open(),
            decode_set: Arc::clone(&self.decode_cells),
            encode_set: Arc::clone(&self.encode_cells),
        }
    }

    /// Bump the `ftb_requests_total{op=...}` counter for `request`.
    pub fn count_request(&self, request: &Request) {
        match request {
            Request::Hello { .. } => self.req_hello.inc(),
            Request::Dist { .. } => self.req_dist.inc(),
            Request::Path { .. } => self.req_path.inc(),
            Request::BatchDist { .. } => self.req_batch_dist.inc(),
            Request::DistMany { .. } => self.req_dist_many.inc(),
            Request::Stats => self.req_stats.inc(),
            Request::Metrics { .. } => self.req_metrics.inc(),
            Request::SlowQueries => self.req_slow_queries.inc(),
            Request::Shutdown => self.req_shutdown.inc(),
            // A deadline wrapper is counted as the request it carries.
            Request::Deadline { inner, .. } => self.count_request(inner),
        }
    }

    /// Render the Prometheus text exposition payload.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Render the JSON exposition payload.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_cells_survive_connection_close() {
        let m = ServerMetrics::new(4);
        {
            let cell = m.conn_cell();
            cell.decode.record(1_000);
            cell.encode.record(2_000);
            let text = m.render_prometheus();
            assert!(text.contains("ftb_connection_decode_seconds_count 1"));
        } // connection closes, cell retires
        let cell2 = m.conn_cell();
        cell2.decode.record(3_000);
        let text = m.render_prometheus();
        assert!(
            text.contains("ftb_connection_decode_seconds_count 2"),
            "retired + live cells merge: {text}"
        );
        assert!(text.contains("ftb_response_encode_seconds_count 1"));
    }

    #[test]
    fn request_counters_by_op() {
        let m = ServerMetrics::new(4);
        m.count_request(&Request::Stats);
        m.count_request(&Request::Stats);
        m.count_request(&Request::SlowQueries);
        assert_eq!(m.req_stats.get(), 2);
        assert_eq!(m.req_slow_queries.get(), 1);
        let text = m.render_prometheus();
        assert!(text.contains("ftb_requests_total{op=\"stats\"} 2"));
    }
}
