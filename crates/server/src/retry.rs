//! Client-side retry with bounded exponential backoff and decorrelated
//! jitter.
//!
//! The serving tier deliberately sheds load (`Overloaded`), isolates worker
//! panics (`Internal`), and injects faults under chaos testing (connection
//! resets, partial writes). All three look like transient failures from the
//! client's seat, and all three are safe to retry **for idempotent reads**:
//! every query the engine answers is a pure function of the immutable
//! preprocessed structure, so re-sending a `Dist` can never double-apply
//! anything. The one mutating request on the wire — `Shutdown` — is
//! explicitly never retried: a retry racing the server's exit could tear
//! down a *freshly restarted* server.
//!
//! Backoff follows the decorrelated-jitter scheme: each sleep is drawn
//! uniformly from `[base, prev * 3]` and clamped to `max_backoff`, which
//! spreads synchronized retry storms apart far better than plain
//! exponential doubling while keeping the same bounded worst case.

use crate::protocol::{ErrorCode, Request, Response};
use std::time::Duration;

/// When (and how patiently) a client retries a failed request.
///
/// A policy is a plain value: it holds no clock and no RNG state, so one
/// policy can be shared by any number of client threads. Per-call mutable
/// state (the jitter RNG, the previous sleep) lives in [`RetryState`],
/// which [`crate::Client::request_with_retry`] threads internally.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries allowed *beyond* the first attempt. `0` disables retrying
    /// while keeping the classification logic (useful for tests).
    pub max_retries: u32,
    /// Lower bound of every backoff draw.
    pub base_backoff: Duration,
    /// Upper clamp on every backoff draw.
    pub max_backoff: Duration,
    /// Seed for the decorrelated jitter; two clients with different seeds
    /// desynchronize even when they fail in lockstep.
    pub seed: u64,
    /// Read timeout re-applied to the socket after every reconnect, so a
    /// retried request cannot hang longer than the original could.
    pub read_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            seed: 0x5EED_F00D,
            read_timeout: None,
        }
    }
}

/// Counters accumulated across every request issued under a policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wire attempts, including first tries.
    pub attempts: u64,
    /// Attempts that were retries of an earlier failure.
    pub retries: u64,
    /// Retries that had to re-dial and re-handshake first.
    pub reconnects: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub gave_up: u64,
}

/// Why an attempt failed, as seen by the retry loop.
#[derive(Debug)]
pub(crate) enum Attempt {
    /// Transport-level failure (reset, EOF, timeout): the connection is
    /// dead and must be re-dialed before the next attempt. The underlying
    /// error stays in the `io::Result` the retry loop already holds.
    Io,
    /// The bounded queue refused admission; connection is fine.
    Overloaded,
    /// The server answered a typed error frame; `None` means the code was
    /// not one this client knows. Connection is fine either way.
    ServerError(Option<ErrorCode>),
}

/// Would retrying this request ever be sound, regardless of what failed?
///
/// Only idempotent reads qualify. `Shutdown` is the lone mutating request;
/// `Hello` is excluded because the retry loop re-handshakes itself on
/// reconnect and a bare duplicate hello mid-session is a protocol
/// violation.
pub(crate) fn request_is_idempotent(req: &Request) -> bool {
    match req {
        Request::Dist { .. }
        | Request::Path { .. }
        | Request::DistMany { .. }
        | Request::BatchDist { .. }
        | Request::Stats
        | Request::Metrics { .. }
        | Request::SlowQueries => true,
        Request::Deadline { inner, .. } => request_is_idempotent(inner),
        Request::Hello { .. } | Request::Shutdown => false,
    }
}

/// Is this specific failure worth another attempt?
pub(crate) fn failure_is_retryable(outcome: &Attempt) -> bool {
    match outcome {
        // Any transport error: the far side reset, stalled, or sent a
        // torn frame. Reconnect-and-retry is the designed recovery.
        Attempt::Io => true,
        // Explicit shedding is the canonical transient failure.
        Attempt::Overloaded => true,
        Attempt::ServerError(code) => match code {
            // An isolated crash (worker panic) is transient: a fresh
            // worker is already being respawned.
            Some(ErrorCode::Internal) => true,
            // The budget already expired once; retrying re-spends a
            // budget the caller declared exhausted.
            Some(ErrorCode::DeadlineExceeded) => false,
            // Deterministic rejections: identical resend, identical answer.
            Some(
                ErrorCode::VertexOutOfRange
                | ErrorCode::EdgeOutOfRange
                | ErrorCode::InvalidFault
                | ErrorCode::FaultSetTooLarge
                | ErrorCode::SourceNotServed
                | ErrorCode::MalformedFrame
                | ErrorCode::ProtocolViolation,
            ) => false,
            // A code this client does not know: assume deterministic.
            None => false,
        },
    }
}

/// Mutable per-request-sequence state: the jitter RNG and the previous
/// sleep the decorrelated scheme feeds forward.
#[derive(Debug)]
pub(crate) struct RetryState {
    rng: u64,
    prev: Duration,
    base: Duration,
    max: Duration,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryState {
    pub(crate) fn new(policy: &RetryPolicy) -> RetryState {
        RetryState {
            rng: splitmix64(policy.seed),
            prev: policy.base_backoff,
            base: policy.base_backoff,
            max: policy.max_backoff.max(policy.base_backoff),
        }
    }

    /// Next sleep: `min(max, uniform(base, prev * 3))`.
    pub(crate) fn next_backoff(&mut self) -> Duration {
        self.rng = splitmix64(self.rng);
        let lo = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let draw = lo + self.rng % (hi - lo);
        let sleep = Duration::from_nanos(draw).min(self.max);
        self.prev = sleep;
        sleep
    }
}

/// Classify a `request()` outcome for the retry loop. `Ok` responses that
/// are not error frames short-circuit as successes before this is called.
pub(crate) fn classify(result: &std::io::Result<Response>) -> Option<Attempt> {
    match result {
        Ok(Response::Overloaded) => Some(Attempt::Overloaded),
        Ok(Response::Error { code, .. }) => Some(Attempt::ServerError(ErrorCode::from_u16(*code))),
        Ok(_) => None,
        Err(_) => Some(Attempt::Io),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::{FaultSet, VertexId};

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            seed: 42,
            ..RetryPolicy::default()
        };
        let mut a = RetryState::new(&policy);
        let mut b = RetryState::new(&policy);
        for _ in 0..100 {
            let (sa, sb) = (a.next_backoff(), b.next_backoff());
            assert_eq!(sa, sb, "same seed must give the same schedule");
            assert!(sa >= policy.base_backoff && sa <= policy.max_backoff);
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let p1 = RetryPolicy {
            seed: 1,
            ..RetryPolicy::default()
        };
        let p2 = RetryPolicy {
            seed: 2,
            ..RetryPolicy::default()
        };
        let (mut s1, mut s2) = (RetryState::new(&p1), RetryState::new(&p2));
        let same = (0..32)
            .filter(|_| s1.next_backoff() == s2.next_backoff())
            .count();
        assert!(
            same < 32,
            "two seeds should not produce identical schedules"
        );
    }

    #[test]
    fn shutdown_is_never_idempotent() {
        assert!(!request_is_idempotent(&Request::Shutdown));
        assert!(!request_is_idempotent(&Request::Hello {
            client_version: 4
        }));
        assert!(request_is_idempotent(&Request::Stats));
        assert!(request_is_idempotent(&Request::Dist {
            source: VertexId::new(0),
            target: VertexId::new(1),
            faults: FaultSet::new(),
        }));
        // Idempotence looks through the deadline wrapper.
        assert!(request_is_idempotent(&Request::Deadline {
            budget_ms: 5,
            inner: Box::new(Request::Stats),
        }));
        assert!(!request_is_idempotent(&Request::Deadline {
            budget_ms: 5,
            inner: Box::new(Request::Shutdown),
        }));
    }

    #[test]
    fn retryability_classification() {
        assert!(failure_is_retryable(&Attempt::Io));
        assert!(failure_is_retryable(&Attempt::Overloaded));
        assert!(failure_is_retryable(&Attempt::ServerError(Some(
            ErrorCode::Internal
        ))));
        let no_retry = [
            ErrorCode::DeadlineExceeded,
            ErrorCode::FaultSetTooLarge,
            ErrorCode::InvalidFault,
            ErrorCode::ProtocolViolation,
        ];
        for code in no_retry {
            assert!(!failure_is_retryable(&Attempt::ServerError(Some(code))));
        }
        assert!(!failure_is_retryable(&Attempt::ServerError(None)));
    }
}
