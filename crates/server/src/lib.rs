//! Network serving for FT-BFS query engines: a long-running TCP service
//! with explicit admission control, and the client pieces to drive it.
//!
//! The preprocess-once/query-many shape of the Parter–Peleg structures is
//! exactly a server's shape: build the expensive
//! [`EngineCore`](ftb_core::EngineCore) once, then
//! answer cheap queries forever. This crate turns that observation into a
//! deployable pair of binaries:
//!
//! * **`ftb-serve`** — owns one `Arc<EngineCore>`; a thread-per-worker pool
//!   drains a *bounded* request queue, each worker holding its private
//!   [`QueryContext`](ftb_core::QueryContext). A full queue is answered
//!   with an `Overloaded` frame instead of unbounded buffering (see
//!   [`server`]).
//! * **`ftb-loadgen`** — an open-loop load generator: request send times
//!   are fixed *before* the run by an
//!   [`ArrivalSchedule`](ftb_workloads::ArrivalSchedule), and latency is
//!   measured from the scheduled send time, so client-side backlog counts
//!   against the server — the methodology that makes p99/p999 numbers
//!   honest near saturation.
//! * **`ftb-build`** — runs the expensive preprocessing *offline* and
//!   persists the result as a flat-binary snapshot
//!   ([`save_snapshot`]/[`load_snapshot`]); `ftb-serve --snapshot FILE`
//!   then restores it in milliseconds instead of rebuilding, turning
//!   server restarts from a preprocessing event into a file read.
//!
//! Both speak the versioned length-prefixed binary protocol of
//! [`protocol`], whose hello handshake carries the served graph's
//! [fingerprint](ftb_graph::Graph::fingerprint) so a client regenerating
//! the workload locally can prove it is naming the same graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod setup;

pub use client::{Client, ServerInfo};
pub use metrics::{ConnCell, ServerMetrics, DEFAULT_SLOW_LOG_CAPACITY};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    DecodeError, ErrorCode, MetricsFormat, Request, Response, SlowQueryReport, StatsReport,
    WirePath, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use retry::{RetryPolicy, RetryStats};
pub use server::{
    wait_until_ready, wait_until_stopped, wait_until_stopped_with, Provenance, ServeOptions, Server,
};
pub use setup::{
    decode_spec, encode_spec, load_snapshot, parse_family, save_snapshot, EngineSpec,
    SnapshotLoadError,
};
