//! The blocking TCP query server.
//!
//! One process owns one immutable [`EngineCore`] behind an `Arc`. Requests
//! flow through three kinds of threads:
//!
//! * the **accept loop** — a non-blocking `accept` polled alongside the
//!   shutdown flag, so a shutdown request never waits on a new client;
//! * one **connection thread** per client — reads frames (with an idle
//!   timeout so a wedged client cannot pin the thread forever), answers
//!   handshake/stats/shutdown inline, and submits query work to the
//!   bounded job queue with `try_send`;
//! * a fixed pool of **workers** — each owns its private
//!   [`QueryContext`] (BFS scratch + row cache) and an
//!   [`AtomicQueryStats`] slot it publishes counters to after every job.
//!
//! Admission control is the load-bearing design point: the job queue is a
//! *bounded* MPMC channel, and a full queue means the connection thread
//! replies [`Response::Overloaded`] immediately instead of buffering. The
//! server's memory is therefore constant under any offered load, and
//! clients observe overload as an explicit, countable signal rather than
//! as silently growing latency.
//!
//! [`Request::Stats`] is answered on the connection thread from the
//! workers' atomic counter cells — it stays responsive even when the
//! query queue is saturated, which is exactly when you want to read it.

use crate::metrics::{ServerMetrics, DEFAULT_SLOW_LOG_CAPACITY};
use crate::protocol::{
    decode_request, encode_response, write_frame, DecodeError, ErrorCode, MetricsFormat, Request,
    Response, SlowQueryReport, StatsReport, WirePath, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ftb_chaos::{Chaos, IoFault, WorkerFault};
use ftb_core::{AtomicQueryStats, EngineCore, EngineObs, FtbfsError, QueryContext, QueryStats};
use ftb_graph::FaultSet;
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Where the served engine came from and what it cost to get ready.
///
/// Filled in by the binary that assembled the engine (built in-process or
/// loaded from a snapshot) and reported verbatim through the
/// [`StatsReport`] provenance fields, so operators can tell a
/// snapshot-restored server from a cold-built one over the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// `true` when the engine was loaded from a persistent snapshot,
    /// `false` when it was built from the spec in-process.
    pub from_snapshot: bool,
    /// Wall time from process start to ready-to-serve, in microseconds.
    pub startup_micros: u64,
    /// Snapshot container format version when `from_snapshot`, else 0.
    pub snapshot_format_version: u32,
}

/// Tuning knobs of [`Server::bind`].
#[derive(Clone)]
pub struct ServeOptions {
    /// Worker threads draining the job queue (each with its own
    /// [`QueryContext`]). Clamped to at least 1.
    pub workers: usize,
    /// Capacity of the bounded job queue; a full queue sheds with
    /// [`Response::Overloaded`]. Clamped to at least 1.
    pub queue_depth: usize,
    /// A connection idle (no bytes) for this long is closed. Also bounds
    /// how long a half-sent frame can pin a connection thread.
    pub idle_timeout: Duration,
    /// Engine startup provenance echoed in [`StatsReport`].
    pub provenance: Provenance,
    /// Capacity of the slow-query board (top-K by handle time; 0 disables).
    pub slow_log_capacity: usize,
    /// When set, serve the metrics payload as plaintext HTTP on this
    /// address too — `curl http://addr/metrics` works without speaking the
    /// binary protocol. `/metrics.json` and `/slow` are also routed.
    pub metrics_addr: Option<SocketAddr>,
    /// Process-wide observability sampling switch applied at bind
    /// ([`ftb_obs::set_sampling`]): per-tier latency histograms and stage
    /// spans record only while it is on. Off still counts requests and
    /// connection/queue activity — only the clock-reading paths stop.
    pub sampling: bool,
    /// Server-side per-request budget, measured from queue admission. A
    /// request that exceeds it while still queued (or between the
    /// fault-set groups of a batch) is shed with
    /// [`ErrorCode::DeadlineExceeded`] instead of burning compute on an
    /// answer nobody is waiting for. `None` disables the budget. When a
    /// request also carries its own [`Request::Deadline`] budget, the
    /// smaller of the two wins.
    pub request_timeout: Option<Duration>,
    /// Fault injection hook threaded through the accept, IO and worker hot
    /// paths. `None` (the production default) makes every hook site a
    /// single branch on an absent `Option` — no drawing, no atomics.
    pub chaos: Option<Arc<dyn Chaos>>,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .field("idle_timeout", &self.idle_timeout)
            .field("provenance", &self.provenance)
            .field("slow_log_capacity", &self.slow_log_capacity)
            .field("metrics_addr", &self.metrics_addr)
            .field("sampling", &self.sampling)
            .field("request_timeout", &self.request_timeout)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 256,
            idle_timeout: Duration::from_secs(30),
            provenance: Provenance::default(),
            slow_log_capacity: DEFAULT_SLOW_LOG_CAPACITY,
            metrics_addr: None,
            sampling: true,
            request_timeout: None,
            chaos: None,
        }
    }
}

/// One unit of queued work: a decoded query request plus the rendezvous
/// channel its answer travels back on. `enqueued` anchors the queue-wait
/// stage measurement.
struct Job {
    request: Request,
    enqueued: Instant,
    /// When (if ever) the request stops being worth answering: queue
    /// admission plus the effective budget (the smaller of the server's
    /// `--request-timeout-ms` and the client's [`Request::Deadline`]).
    deadline: Option<Instant>,
    reply: mpsc::SyncSender<JobDone>,
}

/// What a worker hands back: the answer plus the stage timings and the
/// per-tier answer counts this job produced — the raw material of the
/// queue-wait/handle histograms and the slow-query board. The request
/// rides back so the connection thread can describe the job (opcode,
/// fault set) without cloning it on the way in.
struct JobDone {
    request: Request,
    response: Response,
    queue_nanos: u64,
    handle_nanos: u64,
    tiers: [u64; 6],
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    core: Arc<EngineCore>,
    shutdown: AtomicBool,
    idle_timeout: Duration,
    /// Per-worker stats cells; index = worker id.
    worker_stats: Vec<AtomicQueryStats>,
    accepted: AtomicU64,
    shed: AtomicU64,
    connections: AtomicU64,
    active_connections: AtomicUsize,
    provenance: Provenance,
    metrics: Arc<ServerMetrics>,
    engine_obs: Arc<EngineObs>,
    /// Server-side per-request budget (see [`ServeOptions::request_timeout`]).
    request_timeout: Option<Duration>,
    /// Fault injection hook; `None` in production.
    chaos: Option<Arc<dyn Chaos>>,
    /// Worker threads currently running their loop — maintained by the
    /// workers themselves (guard-decremented even on panic), read by
    /// `/healthz` and tests proving respawn.
    workers_alive: AtomicUsize,
    /// `false` once the accept loop has exited; `/healthz` readiness.
    accept_live: AtomicBool,
}

impl Shared {
    fn stats_report(&self) -> StatsReport {
        let mut total = QueryStats::default();
        for cell in &self.worker_stats {
            total.merge(&cell.snapshot());
        }
        StatsReport {
            queries: total.queries as u64,
            structure_bfs_runs: total.structure_bfs_runs as u64,
            augmented_bfs_runs: total.augmented_bfs_runs as u64,
            full_graph_bfs_runs: total.full_graph_bfs_runs as u64,
            cached_answers: total.cached_answers as u64,
            repaired_rows: total.repaired_rows as u64,
            restricted_repairs: total.restricted_repairs as u64,
            tier_fault_free_row: total.tiers.fault_free_row as u64,
            tier_unaffected_fast_path: total.tiers.unaffected_fast_path as u64,
            tier_batched_unaffected: total.tiers.batched_unaffected as u64,
            tier_sparse_h_bfs: total.tiers.sparse_h_bfs as u64,
            tier_augmented_bfs: total.tiers.augmented_bfs as u64,
            tier_full_graph_bfs: total.tiers.full_graph_bfs as u64,
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            engine_source: self.provenance.from_snapshot as u64,
            startup_micros: self.provenance.startup_micros,
            snapshot_format_version: self.provenance.snapshot_format_version as u64,
        }
    }

    fn hello_ok(&self, negotiated: u16) -> Response {
        let graph = self.core.graph();
        Response::HelloOk {
            version: negotiated,
            fingerprint: graph.fingerprint(),
            num_vertices: graph.num_vertices() as u32,
            num_edges: graph.num_edges() as u32,
            sources: self.core.sources().to_vec(),
        }
    }
}

/// A running query server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send [`Request::Shutdown`] over the wire) and
/// then [`Server::join`].
pub struct Server {
    local_addr: SocketAddr,
    metrics_local_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept_handle: JoinHandle<()>,
    supervisor_handle: JoinHandle<()>,
    metrics_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `core` with `options`. Returns once the listener is live; all
    /// serving happens on background threads.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        core: Arc<EngineCore>,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let workers = options.workers.max(1);
        ftb_obs::set_sampling(options.sampling);
        let metrics = ServerMetrics::new(options.slow_log_capacity);
        let engine_obs = EngineObs::register(metrics.registry());
        // Preprocessing provenance as scrape-time gauges: how this core
        // came to exist, phase by phase (a snapshot-restored server shows
        // a single `snapshot_load` phase).
        for &(phase, nanos) in core.build_timings() {
            metrics.registry().gauge_fn(
                "ftb_build_phase_seconds",
                "Wall time of each engine preprocessing phase",
                &[("phase", phase)],
                Box::new(move || nanos as f64 / 1e9),
            );
        }
        let shared = Arc::new(Shared {
            core,
            shutdown: AtomicBool::new(false),
            idle_timeout: options.idle_timeout.max(Duration::from_millis(1)),
            worker_stats: (0..workers).map(|_| AtomicQueryStats::new()).collect(),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            provenance: options.provenance,
            metrics,
            engine_obs,
            request_timeout: options.request_timeout,
            chaos: options.chaos.clone(),
            workers_alive: AtomicUsize::new(0),
            accept_live: AtomicBool::new(true),
        });

        let (job_tx, job_rx) = bounded::<Job>(options.queue_depth.max(1));
        let worker_handles: Vec<Option<JoinHandle<()>>> = (0..workers)
            .map(|slot| spawn_worker(&shared, job_rx.clone(), slot).map(Some))
            .collect::<io::Result<_>>()?;
        // The supervisor keeps a receiver so it can respawn crashed workers
        // onto the same queue; receivers do not keep the channel alive, so
        // the drain (all senders dropped) still terminates the workers.
        let supervisor_shared = Arc::clone(&shared);
        let supervisor_handle = thread::Builder::new()
            .name("ftb-supervisor".to_string())
            .spawn(move || supervisor_loop(supervisor_shared, job_rx, worker_handles))?;

        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("ftb-accept".to_string())
            .spawn(move || {
                accept_loop(listener, accept_shared, job_tx);
            })?;

        let (metrics_local_addr, metrics_handle) = match options.metrics_addr {
            None => (None, None),
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                let local = listener.local_addr()?;
                let http_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("ftb-metrics-http".to_string())
                    .spawn(move || metrics_http_loop(listener, http_shared))?;
                (Some(local), Some(handle))
            }
        };

        Ok(Server {
            local_addr,
            metrics_local_addr,
            shared,
            accept_handle,
            supervisor_handle,
            metrics_handle,
        })
    }

    /// The bound address (with the resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound plaintext-HTTP metrics address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_local_addr
    }

    /// The server's metric surface, for in-process rendering and tests.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Request a graceful shutdown: stop accepting, let in-flight requests
    /// complete, drain the queue, stop the workers.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a shutdown (local or wire-requested) has been triggered.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The same counters [`Request::Stats`] reports, read in-process.
    pub fn stats(&self) -> StatsReport {
        self.shared.stats_report()
    }

    /// Worker threads currently running (the supervisor respawns crashed
    /// ones, so this converges back to [`Server::workers_configured`]
    /// after a panic).
    pub fn workers_alive(&self) -> usize {
        self.shared.workers_alive.load(Ordering::SeqCst)
    }

    /// The worker pool size the server was built with.
    pub fn workers_configured(&self) -> usize {
        self.shared.worker_stats.len()
    }

    /// Block until the server has fully stopped (all connections closed,
    /// queue drained, workers joined). Only returns after a shutdown has
    /// been triggered by [`Server::shutdown`] or a wire request.
    ///
    /// Panics inside the serving threads are contained *before* this
    /// point (counted in `ftb_thread_panics_total`, loops re-entered,
    /// workers respawned); an error here means containment itself failed.
    pub fn join(self) -> io::Result<()> {
        self.accept_handle
            .join()
            .map_err(|_| io::Error::other("server accept thread panicked"))?;
        self.supervisor_handle
            .join()
            .map_err(|_| io::Error::other("server supervisor thread panicked"))?;
        if let Some(handle) = self.metrics_handle {
            handle
                .join()
                .map_err(|_| io::Error::other("metrics thread panicked"))?;
        }
        Ok(())
    }
}

/// Poll interval of the accept loop: the latency bound on noticing the
/// shutdown flag with no client activity.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Poll interval of the worker supervisor.
const SUPERVISOR_TICK: Duration = Duration::from_millis(5);

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, job_tx: Sender<Job>) {
    // Panic containment: a panic anywhere in the polling loop is counted
    // and the loop re-entered, so one bad connection setup cannot silently
    // kill the accept thread — the old behaviour was an opaque io::Error
    // surfacing only at `Server::join`.
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            accept_requests(&listener, &shared, &job_tx)
        }));
        match outcome {
            Ok(()) => break,
            Err(_) => {
                shared.metrics.thread_panics_accept.inc();
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    shared.accept_live.store(false, Ordering::SeqCst);
    drop(listener);
    // Graceful drain: connection threads notice the flag after their
    // current request (or their next idle tick) and exit on their own.
    while shared.active_connections.load(Ordering::SeqCst) > 0 {
        thread::sleep(Duration::from_millis(2));
    }
    // Last sender gone → workers drain the remaining queue and stop; the
    // supervisor joins them and exits once every slot is done.
    drop(job_tx);
}

/// The accept polling loop proper; returns on shutdown.
fn accept_requests(listener: &TcpListener, shared: &Arc<Shared>, job_tx: &Sender<Job>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Some(chaos) = &shared.chaos {
                    if chaos.on_accept() {
                        // Injected accept failure: drop the connection the
                        // way an aborted handshake would.
                        shared.metrics.accept_errors_total.inc();
                        drop(stream);
                        continue;
                    }
                }
                let conn_shared = Arc::clone(shared);
                let jobs = job_tx.clone();
                shared.connections.fetch_add(1, Ordering::Relaxed);
                shared.metrics.connections_total.inc();
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                shared.metrics.connections_active.inc();
                let spawned =
                    thread::Builder::new()
                        .name("ftb-conn".to_string())
                        .spawn(move || {
                            if serve_connection(stream, &conn_shared, &jobs).is_err() {
                                conn_shared.metrics.reaped_io_error.inc();
                            }
                            conn_shared
                                .active_connections
                                .fetch_sub(1, Ordering::SeqCst);
                            conn_shared.metrics.connections_active.dec();
                        });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion): the guard
                    // above never ran, undo the active count and drop the
                    // stream, refusing the connection.
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.connections_active.dec();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            // Transient accept errors (aborted handshake etc.): counted,
            // survived.
            Err(_) => {
                shared.metrics.accept_errors_total.inc();
                thread::sleep(ACCEPT_TICK);
            }
        }
    }
}

fn spawn_worker(
    shared: &Arc<Shared>,
    jobs: Receiver<Job>,
    slot: usize,
) -> io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("ftb-worker-{slot}"))
        .spawn(move || worker_loop(shared, jobs, slot))
}

/// Watches the worker pool: a slot whose thread exits by panic (an
/// *uncaught* panic — handler panics are caught in [`worker_loop`]) is
/// counted and respawned with a fresh [`QueryContext`] on the same queue.
/// Exits once every slot has drained cleanly at shutdown.
fn supervisor_loop(
    shared: Arc<Shared>,
    jobs: Receiver<Job>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    loop {
        let mut all_done = true;
        for (slot, entry) in handles.iter_mut().enumerate() {
            if entry.as_ref().is_some_and(|h| h.is_finished()) {
                let handle = entry.take().expect("slot checked non-empty");
                if handle.join().is_err() {
                    shared.metrics.thread_panics_worker.inc();
                    shared.metrics.worker_respawns.inc();
                    *entry = spawn_worker(&shared, jobs.clone(), slot).ok();
                }
            }
            if entry.is_some() {
                all_done = false;
            }
        }
        if all_done {
            return;
        }
        thread::sleep(SUPERVISOR_TICK);
    }
}

/// Decrements `workers_alive` when the worker exits — by clean drain or
/// by uncaught panic alike, so `/healthz` never overcounts.
struct WorkerAlive(Arc<Shared>);

impl Drop for WorkerAlive {
    fn drop(&mut self) {
        self.0.workers_alive.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Receiver<Job>, slot: usize) {
    shared.workers_alive.fetch_add(1, Ordering::SeqCst);
    let _alive = WorkerAlive(Arc::clone(&shared));
    // The slot's already-published totals (from a predecessor incarnation,
    // when this is a respawn) are the base the fresh context accumulates
    // on, so the merged stats stay monotone across panics and respawns.
    let mut base: QueryStats = shared.worker_stats[slot].snapshot();
    'context: loop {
        let mut ctx = shared.core.new_context();
        ctx.attach_obs(Arc::clone(&shared.engine_obs));
        while let Ok(job) = jobs.recv() {
            shared.metrics.queue_depth.dec();
            let fault = match &shared.chaos {
                Some(chaos) => chaos.on_job(),
                None => WorkerFault::None,
            };
            match fault {
                // Outside any catch: kills this thread, exercising the
                // supervisor (the connection sees the dropped reply sender
                // as a typed Internal frame).
                WorkerFault::PanicUncaught => panic!("chaos: injected uncaught worker panic"),
                WorkerFault::Stall(d) => thread::sleep(d),
                WorkerFault::None | WorkerFault::Panic => {}
            }
            let queue_nanos = job.enqueued.elapsed().as_nanos() as u64;
            shared.metrics.queue_wait.record(queue_nanos);
            // Deadline check at dequeue: stale work is shed before any
            // compute, so the engine's tier counters are untouched.
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                shared.metrics.deadline_exceeded_total.inc();
                let _ = job.reply.send(JobDone {
                    request: job.request,
                    response: deadline_exceeded("expired while queued; the query was not run"),
                    queue_nanos,
                    handle_nanos: 0,
                    tiers: [0; 6],
                });
                continue;
            }
            let before = ctx.stats().tiers;
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if matches!(fault, WorkerFault::Panic) {
                    panic!("chaos: injected handler panic");
                }
                answer(&shared.core, &mut ctx, &job.request, job.deadline)
            }));
            let handle_nanos = started.elapsed().as_nanos() as u64;
            match outcome {
                Ok(response) => {
                    shared.metrics.handle.record(handle_nanos);
                    if is_deadline_exceeded(&response) {
                        shared.metrics.deadline_exceeded_total.inc();
                    }
                    let after = ctx.stats().tiers;
                    let tiers = [
                        (after.fault_free_row - before.fault_free_row) as u64,
                        (after.unaffected_fast_path - before.unaffected_fast_path) as u64,
                        (after.batched_unaffected - before.batched_unaffected) as u64,
                        (after.sparse_h_bfs - before.sparse_h_bfs) as u64,
                        (after.augmented_bfs - before.augmented_bfs) as u64,
                        (after.full_graph_bfs - before.full_graph_bfs) as u64,
                    ];
                    let mut published = base;
                    published.merge(&ctx.stats());
                    shared.worker_stats[slot].store(&published);
                    // A send failure means the connection died while its
                    // request was queued; the answer is simply dropped.
                    let _ = job.reply.send(JobDone {
                        request: job.request,
                        response,
                        queue_nanos,
                        handle_nanos,
                        tiers,
                    });
                }
                Err(_) => {
                    // The handler panicked mid-request: the connection gets
                    // a typed Internal frame (the connection survives), and
                    // this worker discards its possibly-inconsistent
                    // context for a fresh one — an in-place respawn.
                    shared.metrics.thread_panics_worker.inc();
                    shared.metrics.worker_respawns.inc();
                    let _ = job.reply.send(JobDone {
                        request: job.request,
                        response: Response::Error {
                            code: ErrorCode::Internal as u16,
                            message: "worker panicked while handling the request".to_string(),
                        },
                        queue_nanos,
                        handle_nanos,
                        tiers: [0; 6],
                    });
                    base.merge(&ctx.stats());
                    shared.worker_stats[slot].store(&base);
                    continue 'context;
                }
            }
        }
        return;
    }
}

/// The typed shed reply for an expired budget, distinct from
/// [`Response::Overloaded`] (refused admission) and plain `Internal`
/// (something broke).
fn deadline_exceeded(context: &str) -> Response {
    Response::Error {
        code: ErrorCode::DeadlineExceeded as u16,
        message: format!("request deadline {context}"),
    }
}

fn is_deadline_exceeded(response: &Response) -> bool {
    matches!(
        response,
        Response::Error { code, .. } if *code == ErrorCode::DeadlineExceeded as u16
    )
}

fn engine_error(err: &FtbfsError) -> Response {
    Response::Error {
        code: ErrorCode::from_engine_error(err) as u16,
        message: err.to_string(),
    }
}

/// Compute the answer to one query request on the worker's context.
///
/// `deadline` is re-checked between the fault-set groups of a batch —
/// the natural preemption points of the only request kind whose compute
/// is long enough to outlive a budget mid-flight.
fn answer(
    core: &EngineCore,
    ctx: &mut QueryContext,
    request: &Request,
    deadline: Option<Instant>,
) -> Response {
    match request {
        Request::Dist {
            source,
            target,
            faults,
        } => match ctx.dist_after_faults_from(core, *source, *target, faults) {
            Ok(d) => Response::Dist(d),
            Err(e) => engine_error(&e),
        },
        Request::Path {
            source,
            target,
            faults,
        } => match ctx.path_after_faults_from(core, *source, *target, faults) {
            Ok(p) => Response::Path(p.map(|path| WirePath {
                vertices: path.vertices().to_vec(),
                edges: path.edges().to_vec(),
            })),
            Err(e) => engine_error(&e),
        },
        Request::BatchDist { source, queries } => {
            // Validate every entry up front, in input order, mirroring the
            // per-query check sequence: the whole batch fails on the first
            // invalid entry (a partial answer vector would silently
            // misalign), with the same error the serial loop would hit.
            for (target, faults) in queries {
                if let Err(e) = core.validate_query(*source, *target, faults) {
                    return engine_error(&e);
                }
            }
            // Group targets sharing a fault set so one classification (and
            // at most one repair sweep) amortises across the whole group.
            let mut groups: BTreeMap<&ftb_graph::FaultSet, Vec<usize>> = BTreeMap::new();
            for (i, (_, faults)) in queries.iter().enumerate() {
                groups.entry(faults).or_default().push(i);
            }
            let mut out = vec![None; queries.len()];
            let mut targets = Vec::new();
            for (faults, indices) in groups {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    // A partial answer vector would misalign; the whole
                    // batch is shed, like the in-queue case.
                    return deadline_exceeded("expired between batch fault-set groups");
                }
                targets.clear();
                targets.extend(indices.iter().map(|&i| queries[i].0));
                match ctx.dist_many_after_faults_from(core, *source, &targets, faults) {
                    Ok(ds) => {
                        for (&i, d) in indices.iter().zip(ds) {
                            out[i] = d;
                        }
                    }
                    Err(e) => return engine_error(&e),
                }
            }
            Response::BatchDist(out)
        }
        Request::DistMany {
            source,
            targets,
            faults,
        } => match ctx.dist_many_after_faults_from(core, *source, targets, faults) {
            Ok(ds) => Response::DistMany(ds),
            Err(e) => engine_error(&e),
        },
        // Unwrapped by the connection thread before submission; reaching a
        // worker still wrapped is a bug.
        Request::Deadline { .. } => Response::Error {
            code: ErrorCode::Internal as u16,
            message: "deadline wrapper routed to a worker unwrapped".to_string(),
        },
        // Routed inline by the connection thread; reaching a worker is a bug.
        Request::Hello { .. }
        | Request::Stats
        | Request::Metrics { .. }
        | Request::SlowQueries
        | Request::Shutdown => Response::Error {
            code: ErrorCode::Internal as u16,
            message: "control request routed to a worker".to_string(),
        },
    }
}

/// Why a connection stopped yielding frames — kept so the reap counters
/// can tell an idle expiry from a client that simply finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CloseReason {
    /// The peer closed cleanly at a frame boundary.
    CleanEof,
    /// No bytes for the idle budget: the server reaped the connection.
    Idle,
    /// Shutdown noticed between frames.
    Shutdown,
}

/// Outcome of reading one frame under the idle/shutdown regime.
enum FrameRead {
    Frame(Vec<u8>),
    /// Clean EOF, idle expiry, or shutdown noticed between frames.
    Closed(CloseReason),
}

/// Read one frame, accumulating idle time in `idle_timeout`-bounded ticks.
///
/// Between frames, a shutdown closes the connection immediately; *inside*
/// a frame the read keeps going (the request is considered in flight) until
/// the frame completes or the idle budget runs out — so a wedged client
/// that sent half a length prefix cannot pin the thread past the timeout.
fn read_frame_idle(stream: &mut TcpStream, shared: &Shared) -> io::Result<FrameRead> {
    if let Some(chaos) = &shared.chaos {
        match chaos.on_read() {
            IoFault::Slow(d) => thread::sleep(d),
            IoFault::Reset | IoFault::PartialWrite => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected connection reset",
                ));
            }
            IoFault::None => {}
        }
    }
    let mut len_bytes = [0u8; 4];
    match fill_with_idle(stream, shared, &mut len_bytes, true)? {
        FillOutcome::Done => {}
        FillOutcome::Closed(reason) => return Ok(FrameRead::Closed(reason)),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > crate::protocol::MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::FrameTooLarge { len }.to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    match fill_with_idle(stream, shared, &mut payload, false)? {
        FillOutcome::Done => Ok(FrameRead::Frame(payload)),
        FillOutcome::Closed(reason) => Ok(FrameRead::Closed(reason)),
    }
}

enum FillOutcome {
    Done,
    Closed(CloseReason),
}

fn fill_with_idle(
    stream: &mut TcpStream,
    shared: &Shared,
    buf: &mut [u8],
    at_frame_boundary: bool,
) -> io::Result<FillOutcome> {
    let mut filled = 0usize;
    let mut idle = Duration::ZERO;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                // Clean close at a frame boundary; truncation inside one.
                return if at_frame_boundary && filled == 0 {
                    Ok(FillOutcome::Closed(CloseReason::CleanEof))
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                idle = Duration::ZERO;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if at_frame_boundary && filled == 0 && shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(FillOutcome::Closed(CloseReason::Shutdown));
                }
                idle += read_tick(shared);
                if idle >= shared.idle_timeout {
                    return Ok(FillOutcome::Closed(CloseReason::Idle));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FillOutcome::Done)
}

/// Read-timeout tick: short enough to notice shutdown promptly, never
/// longer than the idle budget itself.
fn read_tick(shared: &Shared) -> Duration {
    shared.idle_timeout.min(Duration::from_millis(100))
}

/// The slow-query description of a query request: opcode, source, target
/// count, and the fault set (for `BatchDist`, whose fault sets vary per
/// entry, the first one stands in). `None` for control frames.
fn slow_query_shape(request: &Request) -> Option<(u8, ftb_graph::VertexId, u32, FaultSet)> {
    match request {
        Request::Dist { source, faults, .. } => Some((0x02, *source, 1, faults.clone())),
        Request::Path { source, faults, .. } => Some((0x03, *source, 1, faults.clone())),
        Request::BatchDist { source, queries } => Some((
            0x04,
            *source,
            queries.len() as u32,
            queries.first().map(|(_, f)| f.clone()).unwrap_or_default(),
        )),
        Request::DistMany {
            source,
            targets,
            faults,
        } => Some((0x07, *source, targets.len() as u32, faults.clone())),
        _ => None,
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared, jobs: &Sender<Job>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_tick(shared)))?;
    let cell = shared.metrics.conn_cell();
    let mut session_version: Option<u16> = None;
    loop {
        let payload = match read_frame_idle(&mut stream, shared)? {
            FrameRead::Frame(p) => p,
            FrameRead::Closed(reason) => {
                if reason == CloseReason::Idle {
                    shared.metrics.reaped_idle.inc();
                }
                return Ok(());
            }
        };
        let decode_started = Instant::now();
        let decoded = decode_request(&payload);
        cell.decode
            .record(decode_started.elapsed().as_nanos() as u64);
        let request = match decoded {
            Ok(r) => r,
            Err(e) => {
                // A peer that sends garbage gets one typed error frame,
                // then the connection closes: framing is unrecoverable.
                shared.metrics.decode_errors_total.inc();
                shared.metrics.reaped_malformed.inc();
                let resp = Response::Error {
                    code: ErrorCode::MalformedFrame as u16,
                    message: e.to_string(),
                };
                write_response_frame(&mut stream, &encode_response(&resp), shared)?;
                return Ok(());
            }
        };
        shared.metrics.count_request(&request);
        let mut close_after_reply = false;
        // Version-gate before routing: a session that has not negotiated
        // the frame's protocol level gets a typed violation, whatever the
        // frame is.
        let gate = match session_version {
            None if !matches!(request, Request::Hello { .. }) => Some(Response::Error {
                code: ErrorCode::ProtocolViolation as u16,
                message: "requests before Hello handshake".to_string(),
            }),
            Some(v) if v < request.min_version() => Some(Response::Error {
                code: ErrorCode::ProtocolViolation as u16,
                message: format!(
                    "request needs protocol version {}, session negotiated {v}",
                    request.min_version()
                ),
            }),
            _ => None,
        };
        let (response, done) = if let Some(resp) = gate {
            (resp, None)
        } else {
            match request {
                Request::Hello { client_version } => {
                    let resp =
                        if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&client_version) {
                            // Speak the client's (older or equal) version for
                            // the rest of the session.
                            session_version = Some(client_version);
                            shared.hello_ok(client_version)
                        } else {
                            close_after_reply = true;
                            Response::Error {
                                code: ErrorCode::ProtocolViolation as u16,
                                message: format!(
                                    "server speaks protocol versions \
                                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, \
                                 client sent {client_version}"
                                ),
                            }
                        };
                    (resp, None)
                }
                Request::Stats => (Response::Stats(shared.stats_report()), None),
                Request::Metrics { format } => {
                    let text = match format {
                        MetricsFormat::Prometheus => shared.metrics.render_prometheus(),
                        MetricsFormat::Json => shared.metrics.render_json(),
                    };
                    (Response::MetricsText(text), None)
                }
                Request::SlowQueries => {
                    let board = shared
                        .metrics
                        .slow_log
                        .snapshot()
                        .into_iter()
                        .map(|(_, entry)| entry)
                        .collect();
                    (Response::SlowQueries(board), None)
                }
                Request::Shutdown => {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    close_after_reply = true;
                    (Response::ShuttingDown, None)
                }
                work @ (Request::Dist { .. }
                | Request::Path { .. }
                | Request::BatchDist { .. }
                | Request::DistMany { .. }
                | Request::Deadline { .. }) => {
                    // Unwrap a client deadline here so workers only ever
                    // see bare query requests; decode already guarantees
                    // the wrapped opcode is a query.
                    let (work, client_budget) = match work {
                        Request::Deadline { budget_ms, inner } => {
                            (*inner, Some(Duration::from_millis(budget_ms as u64)))
                        }
                        bare => (bare, None),
                    };
                    match submit(shared, jobs, work, client_budget) {
                        Submitted::Answered(JobDone {
                            request,
                            response,
                            queue_nanos,
                            handle_nanos,
                            tiers,
                        }) => (response, Some((request, queue_nanos, handle_nanos, tiers))),
                        Submitted::Refused(resp) => (resp, None),
                    }
                }
            }
        };
        let encode_started = Instant::now();
        let encoded = encode_response(&response);
        let encode_nanos = encode_started.elapsed().as_nanos() as u64;
        cell.encode.record(encode_nanos);
        if let Some((request, queue_nanos, handle_nanos, tiers)) = done {
            if let Some((opcode, source, targets, faults)) = slow_query_shape(&request) {
                shared.metrics.slow_log.offer(
                    handle_nanos,
                    SlowQueryReport {
                        opcode,
                        source,
                        targets,
                        faults,
                        queue_nanos,
                        handle_nanos,
                        encode_nanos,
                        tiers,
                    },
                );
            }
        }
        write_response_frame(&mut stream, &encoded, shared)?;
        if close_after_reply || shared.shutdown.load(Ordering::SeqCst) {
            // The in-flight request (if any) was answered above; close so
            // the accept loop's drain can complete.
            return Ok(());
        }
    }
}

/// What admission control produced: a worker's finished job (with stage
/// timings for the slow-query board) or a refusal answered inline.
enum Submitted {
    Answered(JobDone),
    Refused(Response),
}

/// Admission control: offer the job to the bounded queue without blocking.
///
/// The job's deadline is anchored at admission: the smaller of the
/// server's [`ServeOptions::request_timeout`] and the client's own
/// [`Request::Deadline`] budget, when either is present.
fn submit(
    shared: &Shared,
    jobs: &Sender<Job>,
    request: Request,
    client_budget: Option<Duration>,
) -> Submitted {
    let budget = match (shared.request_timeout, client_budget) {
        (Some(server), Some(client)) => Some(server.min(client)),
        (server, client) => server.or(client),
    };
    let enqueued = Instant::now();
    let deadline = budget.map(|b| enqueued + b);
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    match jobs.try_send(Job {
        request,
        enqueued,
        deadline,
        reply: reply_tx,
    }) {
        Ok(()) => {
            shared.accepted.fetch_add(1, Ordering::Relaxed);
            shared.metrics.queue_depth.inc();
            // The worker holds the only sender; RecvError means it dropped
            // the job — during a shutdown drain that is the expected path,
            // otherwise the worker crashed hard (its respawn is already
            // under way) and the client gets a typed, retryable frame.
            match reply_rx.recv() {
                Ok(done) => Submitted::Answered(done),
                Err(_) => {
                    let message = if shared.shutdown.load(Ordering::SeqCst) {
                        "server shut down before answering"
                    } else {
                        "worker crashed while handling the request; a fresh worker is starting"
                    };
                    Submitted::Refused(Response::Error {
                        code: ErrorCode::Internal as u16,
                        message: message.to_string(),
                    })
                }
            }
        }
        Err(TrySendError::Full(_)) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.shed_total.inc();
            Submitted::Refused(Response::Overloaded)
        }
        Err(TrySendError::Disconnected(_)) => Submitted::Refused(Response::Error {
            code: ErrorCode::Internal as u16,
            message: "server is shutting down".to_string(),
        }),
    }
}

/// Write a response frame, subject to injected write faults. A partial
/// write sends a strict prefix of the frame and then fails the
/// connection: the peer observes a truncated frame followed by a close —
/// an `UnexpectedEof`, never a desynced stream of valid-looking bytes.
fn write_response_frame(stream: &mut TcpStream, payload: &[u8], shared: &Shared) -> io::Result<()> {
    if let Some(chaos) = &shared.chaos {
        match chaos.on_write() {
            IoFault::PartialWrite => {
                use std::io::Write as _;
                let mut framed = Vec::with_capacity(4 + payload.len());
                framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                framed.extend_from_slice(payload);
                let cut = (framed.len() / 2).max(1);
                let _ = stream.write_all(&framed[..cut]);
                let _ = stream.flush();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected partial write",
                ));
            }
            IoFault::Reset => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected write reset",
                ));
            }
            IoFault::Slow(d) => thread::sleep(d),
            IoFault::None => {}
        }
    }
    write_frame(stream, payload)
}

// ---------------------------------------------------------------------------
// Plaintext HTTP metrics endpoint
// ---------------------------------------------------------------------------

/// Accept loop of the `--metrics-addr` listener: enough HTTP/1.1 to let
/// `curl` and Prometheus scrape without speaking the binary protocol.
/// Routes `/metrics` (text exposition), `/metrics.json`, `/slow` (the
/// slow-query board as JSON), and `/healthz` (readiness/liveness). One
/// request per connection.
fn metrics_http_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are rare and the payload is small: handle inline
                // so a scraper cannot fork unbounded threads — but
                // contained, so a panic in rendering is counted and the
                // listener survives it.
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| serve_metrics_http(stream, &shared)));
                if outcome.is_err() {
                    shared.metrics.thread_panics_metrics.inc();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
}

/// The probe path's read timeout, derived from the serve options instead
/// of a hard-coded constant so tight-deadline tests don't race it: never
/// longer than the connection idle budget, but also never so small that a
/// slow scraper can't deliver its GET line.
fn http_read_timeout(shared: &Shared) -> Duration {
    shared
        .idle_timeout
        .clamp(Duration::from_millis(10), Duration::from_secs(2))
}

/// Read one HTTP request head (bounded), answer it, close.
fn serve_metrics_http(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(http_read_timeout(shared)))?;
    stream.set_nodelay(true)?;
    // Read until the end of the request head, capped well above any sane
    // scraper's GET line.
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 {
            return write_http(&mut stream, 431, "text/plain", "header too large\n");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return write_http(&mut stream, 405, "text/plain", "only GET is served\n");
    }
    match path {
        "/metrics" | "/" => {
            let body = shared.metrics.render_prometheus();
            write_http(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/metrics.json" => {
            let body = shared.metrics.render_json();
            write_http(&mut stream, 200, "application/json", &body)
        }
        "/slow" => {
            let body = render_slow_json(shared);
            write_http(&mut stream, 200, "application/json", &body)
        }
        "/healthz" => {
            let shutting_down = shared.shutdown.load(Ordering::SeqCst);
            let accept_alive = shared.accept_live.load(Ordering::SeqCst);
            let ready = accept_alive && !shutting_down;
            let body = format!(
                "{{\"ready\":{ready},\"shutting_down\":{shutting_down},\
                 \"accept_alive\":{accept_alive},\
                 \"workers_alive\":{},\"workers_configured\":{},\
                 \"worker_panics\":{},\"worker_respawns\":{},\
                 \"accept_panics\":{},\"metrics_panics\":{}}}\n",
                shared.workers_alive.load(Ordering::SeqCst),
                shared.worker_stats.len(),
                shared.metrics.thread_panics_worker.get(),
                shared.metrics.worker_respawns.get(),
                shared.metrics.thread_panics_accept.get(),
                shared.metrics.thread_panics_metrics.get(),
            );
            let status = if ready { 200 } else { 503 };
            write_http(&mut stream, status, "application/json", &body)
        }
        _ => write_http(
            &mut stream,
            404,
            "text/plain",
            "routes: /metrics /metrics.json /slow /healthz\n",
        ),
    }
}

fn write_http(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    use std::io::Write as _;
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The slow-query board as a JSON array, slowest first.
fn render_slow_json(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, (_, q)) in shared.metrics.slow_log.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let faults: Vec<String> = q
            .faults
            .iter()
            .map(|f| match f {
                ftb_graph::Fault::Edge(e) => format!("\"e{}\"", e.0),
                ftb_graph::Fault::Vertex(v) => format!("\"v{}\"", v.0),
            })
            .collect();
        let _ = write!(
            out,
            "\n  {{\"opcode\":{},\"source\":{},\"targets\":{},\"faults\":[{}],\
             \"queue_nanos\":{},\"handle_nanos\":{},\"encode_nanos\":{},\"tiers\":{:?}}}",
            q.opcode,
            q.source.0,
            q.targets,
            faults.join(","),
            q.queue_nanos,
            q.handle_nanos,
            q.encode_nanos,
            q.tiers,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Block until `server`'s port stops accepting connections, with a bound.
/// Test/CI helper for "the server actually exited" assertions. Polls
/// every 10 ms; [`wait_until_stopped_with`] makes the interval explicit.
pub fn wait_until_stopped(addr: SocketAddr, timeout: Duration) -> bool {
    wait_until_stopped_with(addr, timeout, Duration::from_millis(10))
}

/// [`wait_until_stopped`] with an explicit poll interval (clamped to at
/// least 1 ms), for tests whose shutdown windows are tighter — or much
/// looser — than the default cadence.
pub fn wait_until_stopped_with(addr: SocketAddr, timeout: Duration, poll: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    let poll = poll.max(Duration::from_millis(1));
    while Instant::now() < deadline {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(50)).is_err() {
            return true;
        }
        thread::sleep(poll);
    }
    false
}

/// The symmetric startup helper: block until `addr` accepts a TCP
/// connection, with a bound. De-flakes "connect right after bind" races
/// in tests and scripts that spawn `ftb-serve` as a child process.
pub fn wait_until_ready(addr: SocketAddr, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(50)).is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(5));
    }
}
