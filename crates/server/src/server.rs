//! The blocking TCP query server.
//!
//! One process owns one immutable [`EngineCore`] behind an `Arc`. Requests
//! flow through three kinds of threads:
//!
//! * the **accept loop** — a non-blocking `accept` polled alongside the
//!   shutdown flag, so a shutdown request never waits on a new client;
//! * one **connection thread** per client — reads frames (with an idle
//!   timeout so a wedged client cannot pin the thread forever), answers
//!   handshake/stats/shutdown inline, and submits query work to the
//!   bounded job queue with `try_send`;
//! * a fixed pool of **workers** — each owns its private
//!   [`QueryContext`] (BFS scratch + row cache) and an
//!   [`AtomicQueryStats`] slot it publishes counters to after every job.
//!
//! Admission control is the load-bearing design point: the job queue is a
//! *bounded* MPMC channel, and a full queue means the connection thread
//! replies [`Response::Overloaded`] immediately instead of buffering. The
//! server's memory is therefore constant under any offered load, and
//! clients observe overload as an explicit, countable signal rather than
//! as silently growing latency.
//!
//! [`Request::Stats`] is answered on the connection thread from the
//! workers' atomic counter cells — it stays responsive even when the
//! query queue is saturated, which is exactly when you want to read it.

use crate::protocol::{
    decode_request, encode_response, write_frame, DecodeError, ErrorCode, Request, Response,
    StatsReport, WirePath, PROTOCOL_VERSION,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ftb_core::{AtomicQueryStats, EngineCore, FtbfsError, QueryContext, QueryStats};
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Where the served engine came from and what it cost to get ready.
///
/// Filled in by the binary that assembled the engine (built in-process or
/// loaded from a snapshot) and reported verbatim through the
/// [`StatsReport`] provenance fields, so operators can tell a
/// snapshot-restored server from a cold-built one over the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// `true` when the engine was loaded from a persistent snapshot,
    /// `false` when it was built from the spec in-process.
    pub from_snapshot: bool,
    /// Wall time from process start to ready-to-serve, in microseconds.
    pub startup_micros: u64,
    /// Snapshot container format version when `from_snapshot`, else 0.
    pub snapshot_format_version: u32,
}

/// Tuning knobs of [`Server::bind`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads draining the job queue (each with its own
    /// [`QueryContext`]). Clamped to at least 1.
    pub workers: usize,
    /// Capacity of the bounded job queue; a full queue sheds with
    /// [`Response::Overloaded`]. Clamped to at least 1.
    pub queue_depth: usize,
    /// A connection idle (no bytes) for this long is closed. Also bounds
    /// how long a half-sent frame can pin a connection thread.
    pub idle_timeout: Duration,
    /// Engine startup provenance echoed in [`StatsReport`].
    pub provenance: Provenance,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 256,
            idle_timeout: Duration::from_secs(30),
            provenance: Provenance::default(),
        }
    }
}

/// One unit of queued work: a decoded query request plus the rendezvous
/// channel its answer travels back on.
struct Job {
    request: Request,
    reply: mpsc::SyncSender<Response>,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    core: Arc<EngineCore>,
    shutdown: AtomicBool,
    idle_timeout: Duration,
    /// Per-worker stats cells; index = worker id.
    worker_stats: Vec<AtomicQueryStats>,
    accepted: AtomicU64,
    shed: AtomicU64,
    connections: AtomicU64,
    active_connections: AtomicUsize,
    provenance: Provenance,
}

impl Shared {
    fn stats_report(&self) -> StatsReport {
        let mut total = QueryStats::default();
        for cell in &self.worker_stats {
            total.merge(&cell.snapshot());
        }
        StatsReport {
            queries: total.queries as u64,
            structure_bfs_runs: total.structure_bfs_runs as u64,
            augmented_bfs_runs: total.augmented_bfs_runs as u64,
            full_graph_bfs_runs: total.full_graph_bfs_runs as u64,
            cached_answers: total.cached_answers as u64,
            repaired_rows: total.repaired_rows as u64,
            restricted_repairs: total.restricted_repairs as u64,
            tier_fault_free_row: total.tiers.fault_free_row as u64,
            tier_unaffected_fast_path: total.tiers.unaffected_fast_path as u64,
            tier_batched_unaffected: total.tiers.batched_unaffected as u64,
            tier_sparse_h_bfs: total.tiers.sparse_h_bfs as u64,
            tier_augmented_bfs: total.tiers.augmented_bfs as u64,
            tier_full_graph_bfs: total.tiers.full_graph_bfs as u64,
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            engine_source: self.provenance.from_snapshot as u64,
            startup_micros: self.provenance.startup_micros,
            snapshot_format_version: self.provenance.snapshot_format_version as u64,
        }
    }

    fn hello_ok(&self) -> Response {
        let graph = self.core.graph();
        Response::HelloOk {
            version: PROTOCOL_VERSION,
            fingerprint: graph.fingerprint(),
            num_vertices: graph.num_vertices() as u32,
            num_edges: graph.num_edges() as u32,
            sources: self.core.sources().to_vec(),
        }
    }
}

/// A running query server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send [`Request::Shutdown`] over the wire) and
/// then [`Server::join`].
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `core` with `options`. Returns once the listener is live; all
    /// serving happens on background threads.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        core: Arc<EngineCore>,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let workers = options.workers.max(1);
        let shared = Arc::new(Shared {
            core,
            shutdown: AtomicBool::new(false),
            idle_timeout: options.idle_timeout.max(Duration::from_millis(1)),
            worker_stats: (0..workers).map(|_| AtomicQueryStats::new()).collect(),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            provenance: options.provenance,
        });

        let (job_tx, job_rx) = bounded::<Job>(options.queue_depth.max(1));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                thread::Builder::new()
                    .name(format!("ftb-worker-{slot}"))
                    .spawn(move || worker_loop(shared, rx, slot))
            })
            .collect::<io::Result<_>>()?;
        drop(job_rx);

        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("ftb-accept".to_string())
            .spawn(move || {
                accept_loop(listener, accept_shared, job_tx, worker_handles);
            })?;

        Ok(Server {
            local_addr,
            shared,
            accept_handle,
        })
    }

    /// The bound address (with the resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Request a graceful shutdown: stop accepting, let in-flight requests
    /// complete, drain the queue, stop the workers.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a shutdown (local or wire-requested) has been triggered.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The same counters [`Request::Stats`] reports, read in-process.
    pub fn stats(&self) -> StatsReport {
        self.shared.stats_report()
    }

    /// Block until the server has fully stopped (all connections closed,
    /// queue drained, workers joined). Only returns after a shutdown has
    /// been triggered by [`Server::shutdown`] or a wire request.
    pub fn join(self) -> io::Result<()> {
        self.accept_handle
            .join()
            .map_err(|_| io::Error::other("server accept thread panicked"))
    }
}

/// Poll interval of the accept loop: the latency bound on noticing the
/// shutdown flag with no client activity.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    worker_handles: Vec<JoinHandle<()>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let jobs = job_tx.clone();
                shared.connections.fetch_add(1, Ordering::Relaxed);
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                let spawned =
                    thread::Builder::new()
                        .name("ftb-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(stream, &conn_shared, &jobs);
                            conn_shared
                                .active_connections
                                .fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion): the guard
                    // above never ran, undo the active count and drop the
                    // stream, refusing the connection.
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            // Transient accept errors (aborted handshake etc.): keep serving.
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
    drop(listener);
    // Graceful drain: connection threads notice the flag after their
    // current request (or their next idle tick) and exit on their own.
    while shared.active_connections.load(Ordering::SeqCst) > 0 {
        thread::sleep(Duration::from_millis(2));
    }
    // Last sender gone → workers drain the remaining queue and stop.
    drop(job_tx);
    for handle in worker_handles {
        let _ = handle.join();
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Receiver<Job>, slot: usize) {
    let mut ctx = shared.core.new_context();
    while let Ok(job) = jobs.recv() {
        let response = answer(&shared.core, &mut ctx, &job.request);
        shared.worker_stats[slot].store(&ctx.stats());
        // A send failure means the connection died while its request was
        // queued; the answer is simply dropped.
        let _ = job.reply.send(response);
    }
}

fn engine_error(err: &FtbfsError) -> Response {
    Response::Error {
        code: ErrorCode::from_engine_error(err) as u16,
        message: err.to_string(),
    }
}

/// Compute the answer to one query request on the worker's context.
fn answer(core: &EngineCore, ctx: &mut QueryContext, request: &Request) -> Response {
    match request {
        Request::Dist {
            source,
            target,
            faults,
        } => match ctx.dist_after_faults_from(core, *source, *target, faults) {
            Ok(d) => Response::Dist(d),
            Err(e) => engine_error(&e),
        },
        Request::Path {
            source,
            target,
            faults,
        } => match ctx.path_after_faults_from(core, *source, *target, faults) {
            Ok(p) => Response::Path(p.map(|path| WirePath {
                vertices: path.vertices().to_vec(),
                edges: path.edges().to_vec(),
            })),
            Err(e) => engine_error(&e),
        },
        Request::BatchDist { source, queries } => {
            // Validate every entry up front, in input order, mirroring the
            // per-query check sequence: the whole batch fails on the first
            // invalid entry (a partial answer vector would silently
            // misalign), with the same error the serial loop would hit.
            for (target, faults) in queries {
                if let Err(e) = core.validate_query(*source, *target, faults) {
                    return engine_error(&e);
                }
            }
            // Group targets sharing a fault set so one classification (and
            // at most one repair sweep) amortises across the whole group.
            let mut groups: BTreeMap<&ftb_graph::FaultSet, Vec<usize>> = BTreeMap::new();
            for (i, (_, faults)) in queries.iter().enumerate() {
                groups.entry(faults).or_default().push(i);
            }
            let mut out = vec![None; queries.len()];
            let mut targets = Vec::new();
            for (faults, indices) in groups {
                targets.clear();
                targets.extend(indices.iter().map(|&i| queries[i].0));
                match ctx.dist_many_after_faults_from(core, *source, &targets, faults) {
                    Ok(ds) => {
                        for (&i, d) in indices.iter().zip(ds) {
                            out[i] = d;
                        }
                    }
                    Err(e) => return engine_error(&e),
                }
            }
            Response::BatchDist(out)
        }
        Request::DistMany {
            source,
            targets,
            faults,
        } => match ctx.dist_many_after_faults_from(core, *source, targets, faults) {
            Ok(ds) => Response::DistMany(ds),
            Err(e) => engine_error(&e),
        },
        // Routed inline by the connection thread; reaching a worker is a bug.
        Request::Hello { .. } | Request::Stats | Request::Shutdown => Response::Error {
            code: ErrorCode::Internal as u16,
            message: "control request routed to a worker".to_string(),
        },
    }
}

/// Outcome of reading one frame under the idle/shutdown regime.
enum FrameRead {
    Frame(Vec<u8>),
    /// Clean EOF, idle expiry, or shutdown noticed between frames.
    Closed,
}

/// Read one frame, accumulating idle time in `idle_timeout`-bounded ticks.
///
/// Between frames, a shutdown closes the connection immediately; *inside*
/// a frame the read keeps going (the request is considered in flight) until
/// the frame completes or the idle budget runs out — so a wedged client
/// that sent half a length prefix cannot pin the thread past the timeout.
fn read_frame_idle(stream: &mut TcpStream, shared: &Shared) -> io::Result<FrameRead> {
    let mut len_bytes = [0u8; 4];
    match fill_with_idle(stream, shared, &mut len_bytes, true)? {
        FillOutcome::Done => {}
        FillOutcome::Closed => return Ok(FrameRead::Closed),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > crate::protocol::MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::FrameTooLarge { len }.to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    match fill_with_idle(stream, shared, &mut payload, false)? {
        FillOutcome::Done => Ok(FrameRead::Frame(payload)),
        FillOutcome::Closed => Ok(FrameRead::Closed),
    }
}

enum FillOutcome {
    Done,
    Closed,
}

fn fill_with_idle(
    stream: &mut TcpStream,
    shared: &Shared,
    buf: &mut [u8],
    at_frame_boundary: bool,
) -> io::Result<FillOutcome> {
    let mut filled = 0usize;
    let mut idle = Duration::ZERO;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                // Clean close at a frame boundary; truncation inside one.
                return if at_frame_boundary && filled == 0 {
                    Ok(FillOutcome::Closed)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                idle = Duration::ZERO;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if at_frame_boundary && filled == 0 && shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(FillOutcome::Closed);
                }
                idle += read_tick(shared);
                if idle >= shared.idle_timeout {
                    return Ok(FillOutcome::Closed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FillOutcome::Done)
}

/// Read-timeout tick: short enough to notice shutdown promptly, never
/// longer than the idle budget itself.
fn read_tick(shared: &Shared) -> Duration {
    shared.idle_timeout.min(Duration::from_millis(100))
}

fn serve_connection(mut stream: TcpStream, shared: &Shared, jobs: &Sender<Job>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_tick(shared)))?;
    let mut hello_done = false;
    loop {
        let payload = match read_frame_idle(&mut stream, shared)? {
            FrameRead::Frame(p) => p,
            FrameRead::Closed => return Ok(()),
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A peer that sends garbage gets one typed error frame,
                // then the connection closes: framing is unrecoverable.
                let resp = Response::Error {
                    code: ErrorCode::MalformedFrame as u16,
                    message: e.to_string(),
                };
                write_frame(&mut stream, &encode_response(&resp))?;
                return Ok(());
            }
        };
        let mut close_after_reply = false;
        let response = match request {
            Request::Hello { client_version } => {
                if client_version == PROTOCOL_VERSION {
                    hello_done = true;
                    shared.hello_ok()
                } else {
                    close_after_reply = true;
                    Response::Error {
                        code: ErrorCode::ProtocolViolation as u16,
                        message: format!(
                            "server speaks protocol version {PROTOCOL_VERSION}, \
                             client sent {client_version}"
                        ),
                    }
                }
            }
            Request::Stats => Response::Stats(shared.stats_report()),
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                close_after_reply = true;
                Response::ShuttingDown
            }
            work @ (Request::Dist { .. }
            | Request::Path { .. }
            | Request::BatchDist { .. }
            | Request::DistMany { .. }) => {
                if !hello_done {
                    Response::Error {
                        code: ErrorCode::ProtocolViolation as u16,
                        message: "queries before Hello handshake".to_string(),
                    }
                } else {
                    submit(shared, jobs, work)
                }
            }
        };
        write_frame(&mut stream, &encode_response(&response))?;
        if close_after_reply || shared.shutdown.load(Ordering::SeqCst) {
            // The in-flight request (if any) was answered above; close so
            // the accept loop's drain can complete.
            return Ok(());
        }
    }
}

/// Admission control: offer the job to the bounded queue without blocking.
fn submit(shared: &Shared, jobs: &Sender<Job>, request: Request) -> Response {
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    match jobs.try_send(Job {
        request,
        reply: reply_tx,
    }) {
        Ok(()) => {
            shared.accepted.fetch_add(1, Ordering::Relaxed);
            // The worker holds the only sender; RecvError here means it
            // dropped the job during shutdown drain.
            reply_rx.recv().unwrap_or(Response::Error {
                code: ErrorCode::Internal as u16,
                message: "server shut down before answering".to_string(),
            })
        }
        Err(TrySendError::Full(_)) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            Response::Overloaded
        }
        Err(TrySendError::Disconnected(_)) => Response::Error {
            code: ErrorCode::Internal as u16,
            message: "server is shutting down".to_string(),
        },
    }
}

/// Block until `server`'s port stops accepting connections, with a bound.
/// Test/CI helper for "the server actually exited" assertions.
pub fn wait_until_stopped(addr: SocketAddr, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(50)).is_err() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    false
}
