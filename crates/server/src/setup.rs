//! Shared engine/workload setup for `ftb-serve`, `ftb-loadgen` and
//! `ftb-build`.
//!
//! All three binaries must agree on the graph down to the last edge id —
//! the server to build the engine, the load generator to mint valid
//! queries and verify the handshake fingerprint, the snapshot builder to
//! stamp the recipe into the file it writes. An [`EngineSpec`] is that
//! shared recipe: a workload family, size, seed and build parameters, all
//! deterministic. [`EngineSpec::apply_cli_flag`] is the one parser of the
//! spec's command-line flags, so the binaries cannot drift apart; and
//! [`encode_spec`]/[`decode_spec`] round-trip the spec through a
//! snapshot's application-note section, so a snapshot file carries its own
//! provenance.

use ftb_core::{
    build_augmented_structure, BuildConfig, BuildPlan, EngineCore, EngineOptions, FtbfsError,
    SnapshotError, Sources, StructureBuilder, TradeoffBuilder,
};
use ftb_graph::{Graph, VertexId};
use ftb_io::{Reader, Writer};
use ftb_workloads::{Workload, WorkloadFamily};
use std::path::Path;
use std::sync::Arc;

/// A deterministic recipe for the served graph and engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineSpec {
    /// Workload family generating the graph.
    pub family: WorkloadFamily,
    /// Target vertex count.
    pub n: usize,
    /// Generation/build seed.
    pub seed: u64,
    /// Tradeoff parameter `ε` of the structure build.
    pub eps: f64,
    /// Run the replacement-path augmentation stage, giving vertex faults
    /// and dual failures a sparse serving tier instead of the full-graph
    /// fallback.
    pub augment: bool,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            family: WorkloadFamily::ErdosRenyi,
            n: 1000,
            seed: 7,
            eps: 0.3,
            augment: false,
        }
    }
}

/// Parse a workload family by its [`WorkloadFamily::name`].
pub fn parse_family(name: &str) -> Option<WorkloadFamily> {
    WorkloadFamily::all()
        .iter()
        .copied()
        .find(|f| f.name() == name)
}

impl EngineSpec {
    /// The graph this spec names (deterministic in `family`/`n`/`seed`).
    pub fn graph(&self) -> Graph {
        Workload::new(self.family, self.n, self.seed).generate()
    }

    /// The single source the structure is built from.
    pub fn source(&self) -> VertexId {
        VertexId(0)
    }

    /// Build the shareable engine core for `graph` (which must come from
    /// [`EngineSpec::graph`]).
    pub fn build_core(
        &self,
        graph: &Graph,
        options: EngineOptions,
    ) -> Result<Arc<EngineCore>, FtbfsError> {
        let sources = Sources::single(self.source());
        let core = if self.augment {
            let config = BuildConfig::new(self.eps).with_seed(self.seed);
            let augmented = build_augmented_structure(
                graph,
                &sources,
                BuildPlan::Tradeoff { eps: self.eps },
                &config,
            )?;
            EngineCore::build_augmented_with(graph, augmented, options)?
        } else {
            let structure = TradeoffBuilder::new(self.eps)
                .with_config(|c| c.with_seed(self.seed))
                .build(graph, &sources)?;
            EngineCore::build_with(graph, structure, options)?
        };
        Ok(Arc::new(core))
    }

    /// Human-readable one-liner for startup banners.
    pub fn describe(&self) -> String {
        format!(
            "{}(n={}, seed={}) eps={}{}",
            self.family.name(),
            self.n,
            self.seed,
            self.eps,
            if self.augment { " +augmented" } else { "" }
        )
    }

    /// The usage fragment for the flags [`EngineSpec::apply_cli_flag`]
    /// understands, including the valid family names.
    pub fn cli_usage() -> String {
        format!(
            "[--family NAME] [--n N] [--seed S] [--eps E] [--augment]\n\
             families: {}",
            WorkloadFamily::all()
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }

    /// Try to consume one command-line flag belonging to the spec,
    /// pulling the flag's value (when it takes one) from `next`.
    ///
    /// Returns `Ok(true)` when the flag was a spec flag and was applied,
    /// `Ok(false)` when the flag is not a spec flag (the caller handles
    /// it), and `Err(message)` when the flag was recognised but its value
    /// was missing or invalid. This is the single parser all binaries
    /// share, so `ftb-serve`, `ftb-loadgen` and `ftb-build` cannot drift
    /// in how a spec is spelled.
    pub fn apply_cli_flag(
        &mut self,
        flag: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        fn need(flag: &str, v: Option<String>) -> Result<String, String> {
            v.ok_or_else(|| format!("missing value for {flag}"))
        }
        fn num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
            s.parse()
                .map_err(|_| format!("{flag} expects a number, got {s:?}"))
        }
        match flag {
            "--family" => {
                let name = need(flag, next())?;
                self.family =
                    parse_family(&name).ok_or_else(|| format!("unknown family {name:?}"))?;
            }
            "--n" => self.n = num(flag, &need(flag, next())?)?,
            "--seed" => self.seed = num(flag, &need(flag, next())?)?,
            "--eps" => self.eps = num(flag, &need(flag, next())?)?,
            "--augment" => self.augment = true,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Serialize `spec` for a snapshot's application-note section.
///
/// The note travels inside the checksummed container, so a loaded
/// snapshot names the exact recipe it was built from.
pub fn encode_spec(spec: &EngineSpec) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(spec.family.name());
    w.put_u64(spec.n as u64);
    w.put_u64(spec.seed);
    w.put_f64(spec.eps);
    w.put_u8(spec.augment as u8);
    w.into_bytes()
}

/// Decode a spec from a snapshot's application-note section. Total: every
/// byte string maps to `Ok` or a typed [`SnapshotError`], never a panic.
pub fn decode_spec(bytes: &[u8]) -> Result<EngineSpec, SnapshotError> {
    fn bad(detail: &'static str) -> SnapshotError {
        SnapshotError::Malformed {
            section: "engine spec note",
            detail,
        }
    }
    let mut r = Reader::new(bytes);
    let name = r.get_str()?;
    let family = parse_family(&name).ok_or_else(|| bad("unknown workload family"))?;
    let n = r.get_u64()? as usize;
    let seed = r.get_u64()?;
    let eps = r.get_f64()?;
    if !eps.is_finite() {
        return Err(bad("eps is not finite"));
    }
    let augment = match r.get_u8()? {
        0 => false,
        1 => true,
        _ => return Err(bad("augment flag is not 0/1")),
    };
    r.finish("engine spec note")?;
    Ok(EngineSpec {
        family,
        n,
        seed,
        eps,
        augment,
    })
}

/// Why [`load_snapshot`] failed: the file could not be read, or its bytes
/// were not a valid engine snapshot.
#[derive(Debug)]
pub enum SnapshotLoadError {
    /// Reading the snapshot file failed.
    Io(std::io::Error),
    /// The file's bytes did not decode to an engine snapshot.
    Decode(SnapshotError),
}

impl std::fmt::Display for SnapshotLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotLoadError::Io(e) => write!(f, "reading snapshot failed: {e}"),
            SnapshotLoadError::Decode(e) => write!(f, "decoding snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotLoadError::Io(e) => Some(e),
            SnapshotLoadError::Decode(e) => Some(e),
        }
    }
}

/// Persist `core` (with `spec` stamped into the note section) to `path`.
///
/// The bytes are written to a `.tmp` sibling first and renamed into
/// place, so a crash mid-write never leaves a truncated file under the
/// final name — a half-written snapshot would be *detected* at load (the
/// checksum covers everything), but it should not shadow a good one.
pub fn save_snapshot(path: &Path, core: &EngineCore, spec: &EngineSpec) -> std::io::Result<()> {
    let bytes = core.write_snapshot(&encode_spec(spec));
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

/// Load an engine core (and the [`EngineSpec`] it was built from) from a
/// snapshot file written by [`save_snapshot`].
///
/// `options` are the *serving* knobs — deployment configuration supplied
/// at load time, deliberately not part of the persisted state.
pub fn load_snapshot(
    path: &Path,
    options: EngineOptions,
) -> Result<(Arc<EngineCore>, EngineSpec), SnapshotLoadError> {
    let bytes = std::fs::read(path).map_err(SnapshotLoadError::Io)?;
    let (core, note) =
        EngineCore::read_snapshot(&bytes, options).map_err(SnapshotLoadError::Decode)?;
    let spec = decode_spec(&note).map_err(SnapshotLoadError::Decode)?;
    Ok((Arc::new(core), spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_parse() {
        for &f in WorkloadFamily::all() {
            assert_eq!(parse_family(f.name()), Some(f));
        }
        assert_eq!(parse_family("no-such-family"), None);
    }

    #[test]
    fn spec_graph_is_deterministic() {
        let spec = EngineSpec {
            n: 120,
            ..EngineSpec::default()
        };
        assert_eq!(spec.graph().fingerprint(), spec.graph().fingerprint());
    }

    #[test]
    fn spec_note_round_trips() {
        let spec = EngineSpec {
            family: WorkloadFamily::ErdosRenyi,
            n: 321,
            seed: 99,
            eps: 0.45,
            augment: true,
        };
        assert_eq!(decode_spec(&encode_spec(&spec)), Ok(spec));
    }

    #[test]
    fn spec_note_decoding_is_total() {
        let bytes = encode_spec(&EngineSpec::default());
        for cut in 0..bytes.len() {
            assert!(decode_spec(&bytes[..cut]).is_err(), "prefix of {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_spec(&trailing),
            Err(SnapshotError::TrailingBytes { .. })
        ));
        let mut bad_flag = bytes;
        *bad_flag.last_mut().unwrap() = 7;
        assert!(matches!(
            decode_spec(&bad_flag),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn cli_flags_apply() {
        let mut spec = EngineSpec::default();
        let argv = [
            "--family",
            "erdos-renyi",
            "--n",
            "77",
            "--seed",
            "3",
            "--eps",
            "0.5",
            "--augment",
        ];
        let mut it = argv.iter().map(|s| s.to_string());
        while let Some(flag) = it.next() {
            assert_eq!(spec.apply_cli_flag(&flag, &mut || it.next()), Ok(true));
        }
        assert_eq!(spec.n, 77);
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.eps, 0.5);
        assert!(spec.augment);
        assert_eq!(spec.apply_cli_flag("--workers", &mut || None), Ok(false));
        assert!(spec.apply_cli_flag("--n", &mut || None).is_err());
        assert!(spec
            .apply_cli_flag("--n", &mut || Some("x".into()))
            .is_err());
        assert!(spec
            .apply_cli_flag("--family", &mut || Some("nope".into()))
            .is_err());
    }
}
