//! Shared engine/workload setup for `ftb-serve` and `ftb-loadgen`.
//!
//! Both binaries must agree on the graph down to the last edge id — the
//! server to build the engine, the load generator to mint valid queries
//! and verify the handshake fingerprint. An [`EngineSpec`] is that shared
//! recipe: a workload family, size, seed and build parameters, all
//! deterministic.

use ftb_core::{
    build_augmented_structure, BuildConfig, BuildPlan, EngineCore, EngineOptions, FtbfsError,
    Sources, StructureBuilder, TradeoffBuilder,
};
use ftb_graph::{Graph, VertexId};
use ftb_workloads::{Workload, WorkloadFamily};
use std::sync::Arc;

/// A deterministic recipe for the served graph and engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineSpec {
    /// Workload family generating the graph.
    pub family: WorkloadFamily,
    /// Target vertex count.
    pub n: usize,
    /// Generation/build seed.
    pub seed: u64,
    /// Tradeoff parameter `ε` of the structure build.
    pub eps: f64,
    /// Run the replacement-path augmentation stage, giving vertex faults
    /// and dual failures a sparse serving tier instead of the full-graph
    /// fallback.
    pub augment: bool,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            family: WorkloadFamily::ErdosRenyi,
            n: 1000,
            seed: 7,
            eps: 0.3,
            augment: false,
        }
    }
}

/// Parse a workload family by its [`WorkloadFamily::name`].
pub fn parse_family(name: &str) -> Option<WorkloadFamily> {
    WorkloadFamily::all()
        .iter()
        .copied()
        .find(|f| f.name() == name)
}

impl EngineSpec {
    /// The graph this spec names (deterministic in `family`/`n`/`seed`).
    pub fn graph(&self) -> Graph {
        Workload::new(self.family, self.n, self.seed).generate()
    }

    /// The single source the structure is built from.
    pub fn source(&self) -> VertexId {
        VertexId(0)
    }

    /// Build the shareable engine core for `graph` (which must come from
    /// [`EngineSpec::graph`]).
    pub fn build_core(
        &self,
        graph: &Graph,
        options: EngineOptions,
    ) -> Result<Arc<EngineCore>, FtbfsError> {
        let sources = Sources::single(self.source());
        let core = if self.augment {
            let config = BuildConfig::new(self.eps).with_seed(self.seed);
            let augmented = build_augmented_structure(
                graph,
                &sources,
                BuildPlan::Tradeoff { eps: self.eps },
                &config,
            )?;
            EngineCore::build_augmented_with(graph, augmented, options)?
        } else {
            let structure = TradeoffBuilder::new(self.eps)
                .with_config(|c| c.with_seed(self.seed))
                .build(graph, &sources)?;
            EngineCore::build_with(graph, structure, options)?
        };
        Ok(Arc::new(core))
    }

    /// Human-readable one-liner for startup banners.
    pub fn describe(&self) -> String {
        format!(
            "{}(n={}, seed={}) eps={}{}",
            self.family.name(),
            self.n,
            self.seed,
            self.eps,
            if self.augment { " +augmented" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_parse() {
        for &f in WorkloadFamily::all() {
            assert_eq!(parse_family(f.name()), Some(f));
        }
        assert_eq!(parse_family("no-such-family"), None);
    }

    #[test]
    fn spec_graph_is_deterministic() {
        let spec = EngineSpec {
            n: 120,
            ..EngineSpec::default()
        };
        assert_eq!(spec.graph().fingerprint(), spec.graph().fingerprint());
    }
}
