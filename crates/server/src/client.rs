//! A minimal blocking client for the query service: one connection, one
//! in-flight request. The load generator opens one of these per client
//! thread; the smoke test uses it to compare wire answers against an
//! in-process engine.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, MetricsFormat, Request, Response,
    SlowQueryReport, StatsReport, PROTOCOL_VERSION,
};
use ftb_graph::{FaultSet, VertexId};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// What the server declared about itself in the handshake.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    /// The server's protocol version.
    pub version: u16,
    /// Fingerprint of the served graph
    /// ([`Graph::fingerprint`](ftb_graph::Graph::fingerprint)).
    pub fingerprint: u64,
    /// Vertex count of the served graph.
    pub num_vertices: u32,
    /// Edge count of the served graph.
    pub num_edges: u32,
    /// The sources the engine answers from.
    pub sources: Vec<VertexId>,
}

/// A connected, handshaken session with an `ftb-serve` process.
pub struct Client {
    stream: TcpStream,
    info: ServerInfo,
}

fn bad_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connect and perform the hello handshake.
    ///
    /// Fails with `InvalidData` if the server rejects the handshake (e.g. a
    /// protocol version mismatch) or answers with anything but `HelloOk`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            info: ServerInfo {
                version: 0,
                fingerprint: 0,
                num_vertices: 0,
                num_edges: 0,
                sources: Vec::new(),
            },
        };
        match client.request(&Request::Hello {
            client_version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk {
                version,
                fingerprint,
                num_vertices,
                num_edges,
                sources,
            } => {
                client.info = ServerInfo {
                    version,
                    fingerprint,
                    num_vertices,
                    num_edges,
                    sources,
                };
                Ok(client)
            }
            Response::Error { message, .. } => {
                Err(bad_data(format!("handshake rejected: {message}")))
            }
            other => Err(bad_data(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The handshake information.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            )
        })?;
        decode_response(&payload).map_err(bad_data)
    }

    /// Distance query convenience wrapper.
    pub fn dist(
        &mut self,
        source: VertexId,
        target: VertexId,
        faults: FaultSet,
    ) -> io::Result<Response> {
        self.request(&Request::Dist {
            source,
            target,
            faults,
        })
    }

    /// One-to-many distance query convenience wrapper: one source, one
    /// shared fault set, many targets, answered in target order.
    pub fn dist_many(
        &mut self,
        source: VertexId,
        targets: Vec<VertexId>,
        faults: FaultSet,
    ) -> io::Result<Response> {
        self.request(&Request::DistMany {
            source,
            targets,
            faults,
        })
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(bad_data(format!("unexpected stats reply: {other:?}"))),
        }
    }

    /// Fetch the server's metrics snapshot in the Prometheus text
    /// exposition format (protocol ≥ 3).
    pub fn metrics_text(&mut self) -> io::Result<String> {
        self.metrics(MetricsFormat::Prometheus)
    }

    /// Fetch the server's metrics snapshot as a JSON object keyed by
    /// `name{labels}` (protocol ≥ 3) — the payload
    /// `ftb-loadgen --metrics-out` writes.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        self.metrics(MetricsFormat::Json)
    }

    fn metrics(&mut self, format: MetricsFormat) -> io::Result<String> {
        match self.request(&Request::Metrics { format })? {
            Response::MetricsText(text) => Ok(text),
            other => Err(bad_data(format!("unexpected metrics reply: {other:?}"))),
        }
    }

    /// Fetch the slow-query board, slowest first (protocol ≥ 3).
    pub fn slow_queries(&mut self) -> io::Result<Vec<SlowQueryReport>> {
        match self.request(&Request::SlowQueries)? {
            Response::SlowQueries(board) => Ok(board),
            other => Err(bad_data(format!("unexpected slow-query reply: {other:?}"))),
        }
    }

    /// Ask the server to shut down; returns once it acknowledged.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(bad_data(format!("unexpected shutdown reply: {other:?}"))),
        }
    }
}
