//! A minimal blocking client for the query service: one connection, one
//! in-flight request. The load generator opens one of these per client
//! thread; the smoke test uses it to compare wire answers against an
//! in-process engine.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, MetricsFormat, Request, Response,
    SlowQueryReport, StatsReport, PROTOCOL_VERSION,
};
use crate::retry::{classify, failure_is_retryable, request_is_idempotent, RetryState};
use crate::{RetryPolicy, RetryStats};
use ftb_graph::{FaultSet, VertexId};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What the server declared about itself in the handshake.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    /// The server's protocol version.
    pub version: u16,
    /// Fingerprint of the served graph
    /// ([`Graph::fingerprint`](ftb_graph::Graph::fingerprint)).
    pub fingerprint: u64,
    /// Vertex count of the served graph.
    pub num_vertices: u32,
    /// Edge count of the served graph.
    pub num_edges: u32,
    /// The sources the engine answers from.
    pub sources: Vec<VertexId>,
}

/// A connected, handshaken session with an `ftb-serve` process.
pub struct Client {
    stream: TcpStream,
    info: ServerInfo,
    /// Resolved peer address, kept so a retry can re-dial after a reset.
    addr: SocketAddr,
    /// Read timeout re-applied across reconnects.
    read_timeout: Option<Duration>,
}

fn bad_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connect and perform the hello handshake.
    ///
    /// Fails with `InvalidData` if the server rejects the handshake (e.g. a
    /// protocol version mismatch) or answers with anything but `HelloOk`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let mut client = Client {
            stream,
            info: ServerInfo {
                version: 0,
                fingerprint: 0,
                num_vertices: 0,
                num_edges: 0,
                sources: Vec::new(),
            },
            addr: peer,
            read_timeout: None,
        };
        client.handshake()?;
        Ok(client)
    }

    fn handshake(&mut self) -> io::Result<()> {
        match self.request(&Request::Hello {
            client_version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk {
                version,
                fingerprint,
                num_vertices,
                num_edges,
                sources,
            } => {
                self.info = ServerInfo {
                    version,
                    fingerprint,
                    num_vertices,
                    num_edges,
                    sources,
                };
                Ok(())
            }
            Response::Error { message, .. } => {
                Err(bad_data(format!("handshake rejected: {message}")))
            }
            other => Err(bad_data(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// Drop the current connection and establish a fresh, handshaken one
    /// to the same address, preserving any configured read timeout.
    ///
    /// This is what [`Client::request_with_retry`] reaches for after a
    /// transport error; it is public so callers with their own retry
    /// loops can self-heal the same way.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.stream = stream;
        self.handshake()
    }

    /// The handshake information.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Bound how long a single response read may block. `None` removes the
    /// bound. Survives [`Client::reconnect`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            )
        })?;
        decode_response(&payload).map_err(bad_data)
    }

    /// Send one request under a client-supplied deadline (protocol ≥ 4).
    ///
    /// The request is wrapped in [`Request::Deadline`]; the budget starts
    /// when the server admits the job, so queue time counts against it. If
    /// the negotiated session is older than v4 the wrapper would be a
    /// protocol violation, so the request is sent bare and the budget is
    /// silently best-effort (the server may still apply its own
    /// `--request-timeout-ms`).
    pub fn request_with_deadline(
        &mut self,
        req: &Request,
        budget: Duration,
    ) -> io::Result<Response> {
        if self.info.version < 4 {
            return self.request(req);
        }
        let budget_ms = budget.as_millis().min(u32::MAX as u128) as u32;
        self.request(&Request::Deadline {
            budget_ms,
            inner: Box::new(req.clone()),
        })
    }

    /// Send one request, retrying transient failures under `policy`.
    ///
    /// Transport errors trigger a reconnect-and-rehandshake before the next
    /// attempt; `Overloaded`/`Internal` reply frames are retried on the
    /// live connection. Non-idempotent requests ([`Request::Shutdown`]) and
    /// deterministic rejections are never retried — see [`crate::retry`]
    /// for the classification. Counters for every attempt land in `stats`.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
        stats: &mut RetryStats,
    ) -> io::Result<Response> {
        let mut state = RetryState::new(policy);
        let retryable_request = request_is_idempotent(req);
        let mut attempt = 0u32;
        loop {
            stats.attempts += 1;
            let result = self.request(req);
            let failure = match classify(&result) {
                None => return result,
                Some(f) => f,
            };
            let budget_left = attempt < policy.max_retries;
            if !retryable_request || !failure_is_retryable(&failure) || !budget_left {
                if retryable_request && failure_is_retryable(&failure) {
                    stats.gave_up += 1;
                }
                return result;
            }
            attempt += 1;
            stats.retries += 1;
            std::thread::sleep(state.next_backoff());
            if result.is_err() {
                // The transport failed: this connection is dead (or at
                // least desynchronized). Re-dial before the next attempt;
                // if the server itself is gone, surface that error.
                stats.reconnects += 1;
                self.reconnect()?;
            }
        }
    }

    /// Distance query convenience wrapper.
    pub fn dist(
        &mut self,
        source: VertexId,
        target: VertexId,
        faults: FaultSet,
    ) -> io::Result<Response> {
        self.request(&Request::Dist {
            source,
            target,
            faults,
        })
    }

    /// One-to-many distance query convenience wrapper: one source, one
    /// shared fault set, many targets, answered in target order.
    pub fn dist_many(
        &mut self,
        source: VertexId,
        targets: Vec<VertexId>,
        faults: FaultSet,
    ) -> io::Result<Response> {
        self.request(&Request::DistMany {
            source,
            targets,
            faults,
        })
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(bad_data(format!("unexpected stats reply: {other:?}"))),
        }
    }

    /// Fetch the server's metrics snapshot in the Prometheus text
    /// exposition format (protocol ≥ 3).
    pub fn metrics_text(&mut self) -> io::Result<String> {
        self.metrics(MetricsFormat::Prometheus)
    }

    /// Fetch the server's metrics snapshot as a JSON object keyed by
    /// `name{labels}` (protocol ≥ 3) — the payload
    /// `ftb-loadgen --metrics-out` writes.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        self.metrics(MetricsFormat::Json)
    }

    fn metrics(&mut self, format: MetricsFormat) -> io::Result<String> {
        match self.request(&Request::Metrics { format })? {
            Response::MetricsText(text) => Ok(text),
            other => Err(bad_data(format!("unexpected metrics reply: {other:?}"))),
        }
    }

    /// Fetch the slow-query board, slowest first (protocol ≥ 3).
    pub fn slow_queries(&mut self) -> io::Result<Vec<SlowQueryReport>> {
        match self.request(&Request::SlowQueries)? {
            Response::SlowQueries(board) => Ok(board),
            other => Err(bad_data(format!("unexpected slow-query reply: {other:?}"))),
        }
    }

    /// Ask the server to shut down; returns once it acknowledged.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(bad_data(format!("unexpected shutdown reply: {other:?}"))),
        }
    }
}
