//! `ftb-serve` — build an FT-BFS engine once, then serve fault queries
//! over TCP until a `Shutdown` frame (or SIGKILL) arrives.
//!
//! ```text
//! ftb-serve --addr 127.0.0.1:7411 --family erdos-renyi --n 2000 --seed 7 \
//!           --eps 0.3 --workers 4 --queue-depth 256
//! ```
//!
//! The graph is regenerated from `(family, n, seed)` — the same recipe
//! `ftb-loadgen` uses — and its fingerprint is exchanged in the handshake,
//! so a mismatched client fails fast instead of querying the wrong graph.

use ftb_core::EngineOptions;
use ftb_server::{setup, EngineSpec, ServeOptions, Server};
use std::process::exit;
use std::time::Duration;

struct Args {
    addr: String,
    spec: EngineSpec,
    options: ServeOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftb-serve [--addr HOST:PORT] [--family NAME] [--n N] [--seed S]\n\
         \x20                [--eps E] [--augment] [--workers W] [--queue-depth D]\n\
         \x20                [--idle-timeout-ms MS]\n\
         families: {}",
        ftb_workloads::WorkloadFamily::all()
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7411".to_string(),
        spec: EngineSpec::default(),
        options: ServeOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--family" => {
                let name = value("--family");
                args.spec.family = setup::parse_family(&name).unwrap_or_else(|| {
                    eprintln!("unknown family {name:?}");
                    usage()
                });
            }
            "--n" => args.spec.n = parse_num(&value("--n"), "--n"),
            "--seed" => args.spec.seed = parse_num(&value("--seed"), "--seed"),
            "--eps" => {
                args.spec.eps = value("--eps").parse().unwrap_or_else(|_| {
                    eprintln!("--eps expects a float");
                    usage()
                })
            }
            "--augment" => args.spec.augment = true,
            "--workers" => args.options.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-depth" => {
                args.options.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth")
            }
            "--idle-timeout-ms" => {
                args.options.idle_timeout = Duration::from_millis(parse_num(
                    &value("--idle-timeout-ms"),
                    "--idle-timeout-ms",
                ))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got {s:?}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    eprintln!("ftb-serve: building engine for {}", args.spec.describe());
    let graph = args.spec.graph();
    let core = args
        .spec
        .build_core(&graph, EngineOptions::new())
        .unwrap_or_else(|e| {
            eprintln!("ftb-serve: engine build failed: {e}");
            exit(1)
        });
    let server = Server::bind(&args.addr, core, args.options).unwrap_or_else(|e| {
        eprintln!("ftb-serve: bind {} failed: {e}", args.addr);
        exit(1)
    });
    // The loadgen (and scripts) scrape this line for the resolved port.
    println!(
        "ftb-serve: listening on {} (n={}, m={}, fingerprint={:#018x}, workers={}, queue={})",
        server.local_addr(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.fingerprint(),
        args.options.workers.max(1),
        args.options.queue_depth.max(1),
    );
    if let Err(e) = server.join() {
        eprintln!("ftb-serve: {e}");
        exit(1);
    }
    println!("ftb-serve: shut down cleanly");
}
