//! `ftb-serve` — serve FT-BFS fault queries over TCP until a `Shutdown`
//! frame (or SIGKILL) arrives.
//!
//! ```text
//! # build in-process, then serve:
//! ftb-serve --addr 127.0.0.1:7411 --family erdos-renyi --n 2000 --seed 7 \
//!           --eps 0.3 --workers 4 --queue-depth 256
//! # restore a persisted engine instead of rebuilding:
//! ftb-serve --addr 127.0.0.1:7411 --snapshot engine.ftbsnap
//! # build fresh and persist for the next restart:
//! ftb-serve --addr 127.0.0.1:7411 --n 2000 --save-snapshot engine.ftbsnap
//! # expose the metrics payload to curl/Prometheus scrapers:
//! ftb-serve --addr 127.0.0.1:7411 --n 2000 --metrics-addr 127.0.0.1:7412
//! ```
//!
//! The graph is regenerated from `(family, n, seed)` — the same recipe
//! `ftb-loadgen` uses — and its fingerprint is exchanged in the handshake,
//! so a mismatched client fails fast instead of querying the wrong graph.
//! With `--snapshot` the engine (graph included) comes from the file; any
//! spec flags passed alongside are cross-checked against the snapshot's
//! embedded recipe and fingerprint rather than used to build.

use ftb_chaos::{ChaosConfig, SeededChaos};
use ftb_core::{EngineOptions, FtbfsError, SNAPSHOT_FORMAT_VERSION};
use ftb_server::{setup, EngineSpec, Provenance, ServeOptions, Server};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    spec: EngineSpec,
    /// Any spec flag was passed explicitly (enables the cross-check
    /// against a snapshot's embedded spec).
    spec_given: bool,
    options: ServeOptions,
    snapshot: Option<PathBuf>,
    save_snapshot: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftb-serve [--addr HOST:PORT] [--snapshot FILE] [--save-snapshot FILE]\n\
         \x20                [--workers W] [--queue-depth D] [--idle-timeout-ms MS]\n\
         \x20                [--request-timeout-ms MS] [--chaos-seed S]\n\
         \x20                [--metrics-addr HOST:PORT] [--slow-log K] [--no-sampling]\n\
         \x20                {}",
        EngineSpec::cli_usage()
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7411".to_string(),
        spec: EngineSpec::default(),
        spec_given: false,
        options: ServeOptions::default(),
        snapshot: None,
        save_snapshot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match args.spec.apply_cli_flag(&flag, &mut || it.next()) {
            Ok(true) => {
                args.spec_given = true;
                continue;
            }
            Ok(false) => {}
            Err(msg) => {
                eprintln!("{msg}");
                usage()
            }
        }
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--snapshot" => args.snapshot = Some(PathBuf::from(value("--snapshot"))),
            "--save-snapshot" => args.save_snapshot = Some(PathBuf::from(value("--save-snapshot"))),
            "--workers" => args.options.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-depth" => {
                args.options.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth")
            }
            "--idle-timeout-ms" => {
                args.options.idle_timeout = Duration::from_millis(parse_num(
                    &value("--idle-timeout-ms"),
                    "--idle-timeout-ms",
                ))
            }
            "--metrics-addr" => {
                let addr = value("--metrics-addr");
                args.options.metrics_addr = Some(addr.parse().unwrap_or_else(|_| {
                    eprintln!("--metrics-addr expects HOST:PORT, got {addr:?}");
                    usage()
                }))
            }
            "--request-timeout-ms" => {
                let ms: u64 = parse_num(&value("--request-timeout-ms"), "--request-timeout-ms");
                // 0 disables the server-side deadline (clients may still set
                // their own via the protocol's Deadline wrapper).
                args.options.request_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--chaos-seed" => {
                let seed: u64 = parse_num(&value("--chaos-seed"), "--chaos-seed");
                eprintln!(
                    "ftb-serve: WARNING: fault injection enabled (--chaos-seed {seed}); \
                     this server will deliberately drop, stall, and corrupt its own \
                     operations. Never use in production."
                );
                args.options.chaos = Some(Arc::new(SeededChaos::new(ChaosConfig::storm(seed))));
            }
            "--slow-log" => {
                args.options.slow_log_capacity = parse_num(&value("--slow-log"), "--slow-log")
            }
            "--no-sampling" => args.options.sampling = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.snapshot.is_some() && args.save_snapshot.is_some() {
        eprintln!("--snapshot and --save-snapshot are mutually exclusive");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got {s:?}");
        usage()
    })
}

fn main() {
    let start = Instant::now();
    let mut args = parse_args();

    let (core, spec, from_snapshot) = if let Some(path) = &args.snapshot {
        let (core, spec) = setup::load_snapshot(path, EngineOptions::new()).unwrap_or_else(|e| {
            eprintln!("ftb-serve: loading snapshot {} failed: {e}", path.display());
            exit(1)
        });
        if args.spec_given {
            // Spec flags alongside --snapshot are a cross-check, not a
            // build request: the snapshot must serve the exact graph the
            // flags name, reported through the same error queries would
            // see if a facade were attached to the wrong core.
            let local = args.spec.graph();
            let served = core.graph();
            if local.fingerprint() != served.fingerprint() {
                let err = FtbfsError::CoreGraphMismatch {
                    core_vertices: served.num_vertices(),
                    core_edges: served.num_edges(),
                    graph_vertices: local.num_vertices(),
                    graph_edges: local.num_edges(),
                };
                eprintln!(
                    "ftb-serve: snapshot {} does not serve the graph the flags name: {err}\n\
                     (snapshot was built from {})",
                    path.display(),
                    spec.describe(),
                );
                exit(1);
            }
            if args.spec != spec {
                eprintln!(
                    "ftb-serve: snapshot spec mismatch: file says {}, flags say {}",
                    spec.describe(),
                    args.spec.describe(),
                );
                exit(1);
            }
        }
        eprintln!(
            "ftb-serve: restored engine for {} from {}",
            spec.describe(),
            path.display()
        );
        (core, spec, true)
    } else {
        eprintln!("ftb-serve: building engine for {}", args.spec.describe());
        let graph = args.spec.graph();
        let core = args
            .spec
            .build_core(&graph, EngineOptions::new())
            .unwrap_or_else(|e| {
                eprintln!("ftb-serve: engine build failed: {e}");
                exit(1)
            });
        (core, args.spec, false)
    };

    if let Some(path) = &args.save_snapshot {
        if let Err(e) = setup::save_snapshot(path, &core, &spec) {
            eprintln!("ftb-serve: saving snapshot {} failed: {e}", path.display());
            exit(1);
        }
        eprintln!("ftb-serve: snapshot saved to {}", path.display());
    }

    args.options.provenance = Provenance {
        from_snapshot,
        startup_micros: start.elapsed().as_micros() as u64,
        snapshot_format_version: if from_snapshot {
            SNAPSHOT_FORMAT_VERSION
        } else {
            0
        },
    };

    let graph = core.graph();
    let (n, m, fingerprint) = (graph.num_vertices(), graph.num_edges(), graph.fingerprint());
    // `ServeOptions` is no longer `Copy` (it can hold a chaos injector), so
    // grab the fields the banner prints before `bind` consumes it.
    let (workers, queue_depth, startup_micros) = (
        args.options.workers,
        args.options.queue_depth,
        args.options.provenance.startup_micros,
    );
    let server = Server::bind(&args.addr, core, args.options).unwrap_or_else(|e| {
        eprintln!("ftb-serve: bind {} failed: {e}", args.addr);
        exit(1)
    });
    // The loadgen (and scripts) scrape this line for the resolved port.
    println!(
        "ftb-serve: listening on {} (n={}, m={}, fingerprint={:#018x}, workers={}, queue={}, \
         engine={}, startup={:.1}ms)",
        server.local_addr(),
        n,
        m,
        fingerprint,
        workers.max(1),
        queue_depth.max(1),
        if from_snapshot { "snapshot" } else { "built" },
        startup_micros as f64 / 1e3,
    );
    if let Some(metrics_addr) = server.metrics_addr() {
        println!("ftb-serve: metrics on http://{metrics_addr}/metrics");
    }
    if let Err(e) = server.join() {
        eprintln!("ftb-serve: {e}");
        exit(1);
    }
    println!("ftb-serve: shut down cleanly");
}
