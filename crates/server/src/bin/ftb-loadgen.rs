//! `ftb-loadgen` — open-loop load generator for `ftb-serve`, reporting
//! tail latency honestly.
//!
//! ```text
//! ftb-loadgen --addr 127.0.0.1:7411 --family erdos-renyi --n 2000 --seed 7 \
//!             --rate 2000 --requests 10000 --clients 4 --process poisson
//! ```
//!
//! The generator regenerates the served graph locally from the same
//! `(family, n, seed)` recipe and refuses to run unless the handshake
//! fingerprint matches — the queries it mints must name real vertices and
//! edges of the server's graph.
//!
//! **Open loop:** every request's send time is fixed by an
//! [`ArrivalSchedule`] before the run, and latency is measured from that
//! *scheduled* instant, not from the actual write. A slow server therefore
//! shows up as growing latency (client backlog included) instead of
//! silently lowering the offered rate — the difference between measuring
//! the system and measuring the client's politeness. Shed requests
//! (`Overloaded` frames) are counted separately from successes: under
//! saturation, the interesting number is how much load the admission
//! control refused.

use ftb_bench::LatencyHistogram;
use ftb_server::{Client, EngineSpec, Request, Response, RetryPolicy, RetryStats};
use ftb_workloads::{ArrivalProcess, ArrivalSchedule, FaultScenario};
use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    spec: EngineSpec,
    rate: f64,
    requests: usize,
    clients: usize,
    process: ArrivalProcess,
    faults_per_set: usize,
    scenario: FaultScenario,
    /// 0 = classic one-request-per-target `Dist` replay; `T > 0` mints
    /// `DistMany` frames with `T` targets sharing each fault set.
    targets_per_request: usize,
    /// Dump the server's end-of-run metrics registry (JSON exposition)
    /// to this file, next to the latency report on stdout.
    metrics_out: Option<String>,
    shutdown: bool,
    /// Retries per request beyond the first attempt; 0 keeps the old
    /// fire-once behaviour (failures count once and move on).
    retries: u32,
    /// Client-supplied per-request budget (protocol ≥ 4); `None` sends
    /// bare requests.
    deadline: Option<Duration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftb-loadgen --addr HOST:PORT [--rate R] [--requests Q] [--clients C]\n\
         \x20                  [--process fixed|poisson] [--f K] [--scenario NAME]\n\
         \x20                  [--targets T] [--retries N] [--deadline-ms MS]\n\
         \x20                  [--metrics-out FILE] [--shutdown]\n\
         \x20                  {}\n\
         scenarios: {}",
        EngineSpec::cli_usage(),
        FaultScenario::all()
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    exit(2)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got {s:?}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        spec: EngineSpec::default(),
        rate: 1000.0,
        requests: 5000,
        clients: 4,
        process: ArrivalProcess::Poisson,
        faults_per_set: 1,
        scenario: FaultScenario::RandomEdges,
        targets_per_request: 0,
        metrics_out: None,
        shutdown: false,
        retries: 3,
        deadline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match args.spec.apply_cli_flag(&flag, &mut || it.next()) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => {
                eprintln!("{msg}");
                usage()
            }
        }
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--rate" => args.rate = parse_num(&value("--rate"), "--rate"),
            "--requests" => args.requests = parse_num(&value("--requests"), "--requests"),
            "--clients" => args.clients = parse_num(&value("--clients"), "--clients"),
            "--process" => {
                let name = value("--process");
                args.process = ArrivalProcess::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown arrival process {name:?}");
                    usage()
                });
            }
            "--f" => args.faults_per_set = parse_num(&value("--f"), "--f"),
            "--scenario" => {
                let name = value("--scenario");
                args.scenario = FaultScenario::all()
                    .iter()
                    .copied()
                    .find(|s| s.name() == name)
                    .unwrap_or_else(|| {
                        eprintln!("unknown scenario {name:?}");
                        usage()
                    });
            }
            "--targets" => args.targets_per_request = parse_num(&value("--targets"), "--targets"),
            "--retries" => args.retries = parse_num(&value("--retries"), "--retries"),
            "--deadline-ms" => {
                let ms: u64 = parse_num(&value("--deadline-ms"), "--deadline-ms");
                args.deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")),
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage()
    }
    args
}

/// Per-thread outcome counters, merged after the run.
#[derive(Default)]
struct Tally {
    ok: u64,
    disconnected: u64,
    shed: u64,
    deadline_exceeded: u64,
    errors: u64,
    retry: RetryStats,
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn main() {
    let args = parse_args();
    let graph = args.spec.graph();
    let source = args.spec.source();
    let fingerprint = graph.fingerprint();

    // Handshake probe: the run is meaningless unless the server serves the
    // exact graph the workload was minted against.
    let mut probe = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("ftb-loadgen: connect {} failed: {e}", args.addr);
        exit(1)
    });
    let info = probe.info().clone();
    if info.fingerprint != fingerprint {
        eprintln!(
            "ftb-loadgen: graph fingerprint mismatch: server {:#018x}, local {:#018x}\n\
             (server was started with a different --family/--n/--seed)",
            info.fingerprint, fingerprint
        );
        exit(1);
    }
    if !info.sources.contains(&source) {
        eprintln!("ftb-loadgen: server does not serve source {source:?}");
        exit(1);
    }

    // Mint the workload: scenario fault sets cycled over spread-out targets
    // (one-to-many mode pairs each fault set with a whole target list).
    let n = graph.num_vertices();
    let requests: Vec<Request> = if args.targets_per_request > 0 {
        let mut pairs = args.scenario.generate_one_to_many(
            &graph,
            source,
            args.faults_per_set,
            args.targets_per_request,
            64.min(args.requests.max(1)),
            args.spec.seed,
        );
        pairs.retain(|(s, _)| !s.is_empty());
        if pairs.is_empty() {
            eprintln!("ftb-loadgen: scenario produced no usable fault sets");
            exit(1);
        }
        (0..args.requests)
            .map(|i| {
                let (faults, targets) = &pairs[i % pairs.len()];
                Request::DistMany {
                    source,
                    targets: targets.clone(),
                    faults: faults.clone(),
                }
            })
            .collect()
    } else {
        let mut fault_sets = args.scenario.generate(
            &graph,
            source,
            args.faults_per_set,
            64.min(args.requests.max(1)),
            args.spec.seed,
        );
        fault_sets.retain(|s| !s.is_empty());
        if fault_sets.is_empty() {
            fault_sets.push(ftb_graph::FaultSet::new());
        }
        let target = |i: usize| {
            // Fibonacci hashing spreads targets over the vertex space
            // without pulling in an RNG.
            ftb_graph::VertexId(((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as u32)
        };
        (0..args.requests)
            .map(|i| Request::Dist {
                source,
                target: target(i),
                faults: fault_sets[i % fault_sets.len()].clone(),
            })
            .collect()
    };
    let schedule =
        ArrivalSchedule::generate(args.process, args.rate, requests.len(), args.spec.seed);

    println!(
        "ftb-loadgen: {} requests at {} req/s ({} arrivals), {} clients, scenario {} (f={}{}), graph {}",
        requests.len(),
        args.rate,
        args.process.name(),
        args.clients,
        args.scenario.name(),
        args.faults_per_set,
        if args.targets_per_request > 0 {
            format!(", one-to-many x{}", args.targets_per_request)
        } else {
            String::new()
        },
        args.spec.describe(),
    );

    // The probe's counter fetches ride the same retry machinery as the
    // load itself: Stats is an idempotent read, and against a server under
    // chaos (or genuine duress) a single torn connection must not abort
    // the whole run.
    let probe_policy = RetryPolicy {
        max_retries: args.retries.max(3),
        seed: args.spec.seed ^ 0x5747_5453, // "STAT", distinct from load seeds
        ..RetryPolicy::default()
    };
    let mut probe_retry = RetryStats::default();
    let fetch_stats = |probe: &mut Client, retry: &mut RetryStats| match probe.request_with_retry(
        &Request::Stats,
        &probe_policy,
        retry,
    )? {
        Response::Stats(report) => Ok(report),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected stats reply: {other:?}"),
        )),
    };

    let before = fetch_stats(&mut probe, &mut probe_retry).unwrap_or_else(|e| {
        eprintln!("ftb-loadgen: stats failed: {e}");
        exit(1)
    });
    println!(
        "server engine: source={} startup={:.1}ms{}",
        if before.engine_source == 1 {
            "snapshot"
        } else {
            "built"
        },
        before.startup_micros as f64 / 1e3,
        if before.engine_source == 1 {
            format!(" snapshot_format=v{}", before.snapshot_format_version)
        } else {
            String::new()
        },
    );

    // Open-loop replay: a shared cursor hands out request indices; each
    // client thread waits for the request's scheduled instant, sends, and
    // charges the full scheduled-to-answered interval as latency.
    let cursor = Arc::new(AtomicUsize::new(0));
    let clients = args.clients.max(1).min(requests.len().max(1));
    let start = Instant::now() + Duration::from_millis(50);
    let mut merged_hist = LatencyHistogram::new();
    let mut merged_tally = Tally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_idx in 0..clients {
            let cursor = Arc::clone(&cursor);
            let addr = &args.addr;
            let requests = &requests;
            let schedule = &schedule;
            let deadline = args.deadline;
            let policy = RetryPolicy {
                max_retries: args.retries,
                // Distinct seeds per thread: clients that fail in lockstep
                // (e.g. all shed by the same full queue) back off apart.
                seed: args.spec.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9),
                ..RetryPolicy::default()
            };
            handles.push(scope.spawn(move || {
                let mut hist = LatencyHistogram::new();
                let mut tally = Tally::default();
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        tally.errors += 1;
                        return (hist, tally);
                    }
                };
                let v4 = client.info().version >= 4;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let due = start + schedule.offsets()[i];
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let request;
                    let request = match deadline {
                        Some(budget) if v4 => {
                            request = Request::Deadline {
                                budget_ms: budget.as_millis().min(u32::MAX as u128) as u32,
                                inner: Box::new(requests[i].clone()),
                            };
                            &request
                        }
                        _ => &requests[i],
                    };
                    let result = client.request_with_retry(request, &policy, &mut tally.retry);
                    match result {
                        Ok(Response::Dist(d)) => {
                            tally.ok += 1;
                            if d.is_none() {
                                tally.disconnected += 1;
                            }
                            hist.record(due.elapsed().as_nanos() as u64);
                        }
                        Ok(Response::DistMany(ds)) => {
                            tally.ok += 1;
                            tally.disconnected += ds.iter().filter(|d| d.is_none()).count() as u64;
                            hist.record(due.elapsed().as_nanos() as u64);
                        }
                        Ok(Response::Overloaded) => tally.shed += 1,
                        Ok(Response::Error { code, .. })
                            if code == ftb_server::ErrorCode::DeadlineExceeded as u16 =>
                        {
                            tally.deadline_exceeded += 1
                        }
                        Ok(_) => tally.errors += 1,
                        Err(_) => {
                            tally.errors += 1;
                            // The retry budget is spent and the connection
                            // is gone; reconnect bare and go on.
                            match Client::connect(addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                (hist, tally)
            }));
        }
        for handle in handles {
            if let Ok((hist, tally)) = handle.join() {
                merged_hist.merge(&hist);
                merged_tally.ok += tally.ok;
                merged_tally.disconnected += tally.disconnected;
                merged_tally.shed += tally.shed;
                merged_tally.deadline_exceeded += tally.deadline_exceeded;
                merged_tally.errors += tally.errors;
                merged_tally.retry.attempts += tally.retry.attempts;
                merged_tally.retry.retries += tally.retry.retries;
                merged_tally.retry.reconnects += tally.retry.reconnects;
                merged_tally.retry.gave_up += tally.retry.gave_up;
            }
        }
    });
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    println!(
        "completed {} ok ({} disconnected answers), {} shed, {} deadline-exceeded, {} errors \
         in {:.2}s -> {:.0} req/s served",
        merged_tally.ok,
        merged_tally.disconnected,
        merged_tally.shed,
        merged_tally.deadline_exceeded,
        merged_tally.errors,
        wall,
        merged_tally.ok as f64 / wall,
    );
    if args.retries > 0 {
        println!(
            "retry: {} attempts for {} requests, {} retried, {} reconnects, {} gave up",
            merged_tally.retry.attempts,
            requests.len(),
            merged_tally.retry.retries,
            merged_tally.retry.reconnects,
            merged_tally.retry.gave_up,
        );
    }
    if merged_hist.count() > 0 {
        println!(
            "latency from scheduled send (client backlog included): \
             p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  max {:.3}ms  mean {:.3}ms",
            ms(merged_hist.value_at_quantile(0.50)),
            ms(merged_hist.value_at_quantile(0.99)),
            ms(merged_hist.value_at_quantile(0.999)),
            ms(merged_hist.max()),
            merged_hist.mean() / 1e6,
        );
        if args.targets_per_request > 0 {
            // Every request carries the same target count, so dividing the
            // per-request quantiles is the exact per-target amortisation.
            let t = args.targets_per_request as f64;
            println!(
                "amortised per-target ({} targets/request): \
                 p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  mean {:.3}ms",
                args.targets_per_request,
                ms(merged_hist.value_at_quantile(0.50)) / t,
                ms(merged_hist.value_at_quantile(0.99)) / t,
                ms(merged_hist.value_at_quantile(0.999)) / t,
                merged_hist.mean() / 1e6 / t,
            );
        }
    }

    match fetch_stats(&mut probe, &mut probe_retry) {
        Ok(after) => {
            println!(
                "server deltas: queries={} cached={} repaired_rows={} restricted_repairs={} \
                 accepted={} shed={}",
                after.queries - before.queries,
                after.cached_answers - before.cached_answers,
                after.repaired_rows - before.repaired_rows,
                after.restricted_repairs - before.restricted_repairs,
                after.accepted - before.accepted,
                after.shed - before.shed,
            );
            println!(
                "server tiers: fault_free_row={} unaffected_fast_path={} batched_unaffected={} \
                 sparse_h_bfs={} augmented_bfs={} full_graph_bfs={}",
                after.tier_fault_free_row - before.tier_fault_free_row,
                after.tier_unaffected_fast_path - before.tier_unaffected_fast_path,
                after.tier_batched_unaffected - before.tier_batched_unaffected,
                after.tier_sparse_h_bfs - before.tier_sparse_h_bfs,
                after.tier_augmented_bfs - before.tier_augmented_bfs,
                after.tier_full_graph_bfs - before.tier_full_graph_bfs,
            );
        }
        Err(e) => eprintln!("ftb-loadgen: final stats failed: {e}"),
    }

    if let Some(path) = &args.metrics_out {
        // End-of-run registry snapshot: everything the server measured,
        // including the per-connection cells of the load clients that just
        // disconnected (their totals retire into the merged series).
        match probe.metrics_json() {
            Ok(json) => match std::fs::write(path, &json) {
                Ok(()) => println!("server metrics written to {path}"),
                Err(e) => {
                    eprintln!("ftb-loadgen: writing {path} failed: {e}");
                    exit(1);
                }
            },
            Err(e) => {
                eprintln!("ftb-loadgen: metrics fetch failed: {e}");
                exit(1);
            }
        }
    }

    if args.shutdown {
        match probe.shutdown() {
            Ok(()) => println!("server acknowledged shutdown"),
            Err(e) => {
                eprintln!("ftb-loadgen: shutdown failed: {e}");
                exit(1);
            }
        }
    }
    if merged_tally.ok == 0 {
        eprintln!("ftb-loadgen: no request succeeded");
        exit(1);
    }
}
