//! `ftb-build` — run the expensive FT-BFS preprocessing offline and
//! persist the finished engine as a flat-binary snapshot.
//!
//! ```text
//! ftb-build --out engine.ftbsnap --family erdos-renyi --n 2000 --seed 7 \
//!           --eps 0.3 --augment --verify
//! ```
//!
//! The snapshot embeds the [`EngineSpec`] it was built from (inside the
//! checksummed container), so `ftb-serve --snapshot` and `ftb-loadgen`
//! can recover the recipe without re-supplying it. `--verify` reloads the
//! written file and re-serializes the restored engine, asserting the
//! bytes are identical — the save→load→save fixed-point check.

use ftb_core::EngineOptions;
use ftb_server::{setup, EngineSpec};
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

struct Args {
    out: PathBuf,
    spec: EngineSpec,
    verify: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftb-build --out FILE [--verify]\n\
         \x20                {}",
        EngineSpec::cli_usage()
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut out = None;
    let mut spec = EngineSpec::default();
    let mut verify = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match spec.apply_cli_flag(&flag, &mut || it.next()) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => {
                eprintln!("{msg}");
                usage()
            }
        }
        match flag.as_str() {
            "--out" => {
                out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("missing value for --out");
                    usage()
                })))
            }
            "--verify" => verify = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    let Some(out) = out else {
        eprintln!("--out is required");
        usage()
    };
    Args { out, spec, verify }
}

fn main() {
    let args = parse_args();
    eprintln!("ftb-build: building engine for {}", args.spec.describe());
    let build_start = Instant::now();
    let graph = args.spec.graph();
    let core = args
        .spec
        .build_core(&graph, EngineOptions::new())
        .unwrap_or_else(|e| {
            eprintln!("ftb-build: engine build failed: {e}");
            exit(1)
        });
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    let save_start = Instant::now();
    if let Err(e) = setup::save_snapshot(&args.out, &core, &args.spec) {
        eprintln!("ftb-build: writing {} failed: {e}", args.out.display());
        exit(1);
    }
    let save_ms = save_start.elapsed().as_secs_f64() * 1e3;
    let bytes = std::fs::metadata(&args.out).map(|m| m.len()).unwrap_or(0);
    println!(
        "ftb-build: wrote {} ({} bytes, fingerprint={:#018x}): build {:.1}ms, save {:.2}ms",
        args.out.display(),
        bytes,
        graph.fingerprint(),
        build_ms,
        save_ms,
    );

    if args.verify {
        let load_start = Instant::now();
        let (restored, spec) = setup::load_snapshot(&args.out, EngineOptions::new())
            .unwrap_or_else(|e| {
                eprintln!("ftb-build: verify reload failed: {e}");
                exit(1)
            });
        let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
        if spec != args.spec {
            eprintln!(
                "ftb-build: verify failed: embedded spec {} != built spec {}",
                spec.describe(),
                args.spec.describe()
            );
            exit(1);
        }
        let original = std::fs::read(&args.out).unwrap_or_else(|e| {
            eprintln!("ftb-build: verify re-read failed: {e}");
            exit(1)
        });
        let resaved = restored.write_snapshot(&setup::encode_spec(&spec));
        if original != resaved {
            eprintln!(
                "ftb-build: verify failed: re-serializing the restored engine produced \
                 different bytes ({} vs {})",
                resaved.len(),
                original.len()
            );
            exit(1);
        }
        println!(
            "ftb-build: verify ok: load {:.2}ms, save->load->save is byte-identical",
            load_ms
        );
    }
}
