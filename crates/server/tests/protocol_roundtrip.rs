//! Property tests for the wire protocol: arbitrary frames survive
//! encode→decode→encode byte-identically, and hostile bytes (truncations,
//! corruptions, garbage) always produce typed errors — never panics.

use ftb_graph::{EdgeId, Fault, FaultSet, VertexId};
use ftb_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, DecodeError, ErrorCode,
    MetricsFormat, Request, Response, SlowQueryReport, StatsReport, WirePath,
};
use proptest::collection;
use proptest::prelude::*;

/// Build a fault set from parallel kind/id draws (canonicalised by
/// [`FaultSet`] itself: sorted, deduplicated).
fn make_faults(kinds: &[u8], ids: &[u32]) -> FaultSet {
    let mut set = FaultSet::new();
    for (&kind, &id) in kinds.iter().zip(ids) {
        let fault = if kind == 0 {
            Fault::Edge(EdgeId(id))
        } else {
            Fault::Vertex(VertexId(id))
        };
        set.insert(fault);
    }
    set
}

fn make_request(tag: u8, a: u32, b: u32, faults: FaultSet, batch: &[(u32, u32)]) -> Request {
    match tag {
        0 => Request::Hello {
            client_version: a as u16,
        },
        1 => Request::Dist {
            source: VertexId(a),
            target: VertexId(b),
            faults,
        },
        2 => Request::Path {
            source: VertexId(a),
            target: VertexId(b),
            faults,
        },
        3 => Request::BatchDist {
            source: VertexId(a),
            queries: batch
                .iter()
                .map(|&(t, e)| (VertexId(t), FaultSet::from(EdgeId(e))))
                .collect(),
        },
        4 => Request::Stats,
        5 => Request::Shutdown,
        6 => Request::Metrics {
            format: if a.is_multiple_of(2) {
                MetricsFormat::Prometheus
            } else {
                MetricsFormat::Json
            },
        },
        7 => Request::SlowQueries,
        8 => Request::DistMany {
            source: VertexId(a),
            targets: batch.iter().map(|&(t, _)| VertexId(t)).collect(),
            faults,
        },
        // The v4 deadline wrapper around each query shape it may carry
        // (plain and batched distances, paths, one-to-many).
        _ => Request::Deadline {
            budget_ms: a,
            inner: Box::new(make_request(
                [1, 2, 3, 8][(b % 4) as usize],
                b,
                a,
                faults,
                batch,
            )),
        },
    }
}

fn make_response(tag: u8, a: u32, b: u32, path_len: usize, batch: &[(u32, u32)]) -> Response {
    match tag {
        0 => Response::HelloOk {
            version: a as u16,
            fingerprint: (a as u64) << 32 | b as u64,
            num_vertices: a,
            num_edges: b,
            sources: batch.iter().map(|&(s, _)| VertexId(s)).collect(),
        },
        1 => Response::Dist(Some(a)),
        2 => Response::Dist(None),
        3 => Response::Path(Some(WirePath {
            vertices: (0..path_len as u32 + 1).map(VertexId).collect(),
            edges: (0..path_len as u32).map(EdgeId).collect(),
        })),
        4 => Response::Path(None),
        5 => Response::BatchDist(
            batch
                .iter()
                .map(|&(d, flag)| (flag % 2 == 0).then_some(d))
                .collect(),
        ),
        6 => Response::Stats(StatsReport {
            queries: a as u64,
            cached_answers: b as u64,
            shed: (a ^ b) as u64,
            ..Default::default()
        }),
        7 => Response::ShuttingDown,
        8 => Response::Overloaded,
        9 => Response::DistMany(
            batch
                .iter()
                .map(|&(d, flag)| (flag % 2 == 1).then_some(d))
                .collect(),
        ),
        10 => Response::MetricsText(format!(
            "# HELP ftb_requests_total requests\n# TYPE ftb_requests_total counter\n\
             ftb_requests_total{{op=\"dist\"}} {a}\n"
        )),
        11 => Response::SlowQueries(
            batch
                .iter()
                .map(|&(t, e)| SlowQueryReport {
                    opcode: 0x02 + (e % 4) as u8,
                    source: VertexId(a),
                    targets: t,
                    faults: FaultSet::from(EdgeId(e)),
                    queue_nanos: (t as u64) << 8,
                    handle_nanos: (e as u64) << 16,
                    encode_nanos: t as u64 ^ e as u64,
                    tiers: [t as u64, e as u64, 0, 1, 2, 3],
                })
                .collect(),
        ),
        _ => Response::Error {
            code: ErrorCode::VertexOutOfRange as u16 + (a % 8) as u16,
            message: format!("synthetic error {b}"),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_reencode_byte_identically(
        tag in 0u8..10,
        a in 0u32..65536,
        b in 0u32..50_000,
        kinds in collection::vec(0u8..2, 0..6),
        ids in collection::vec(0u32..100_000, 0..6),
        batch in collection::vec((0u32..50_000, 0u32..100_000), 0..8),
    ) {
        let req = make_request(tag, a, b, make_faults(&kinds, &ids), &batch);
        let bytes = encode_request(&req);
        let decoded = decode_request(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(encode_request(&decoded), bytes);
    }

    #[test]
    fn responses_reencode_byte_identically(
        tag in 0u8..13,
        a in 0u32..65536,
        b in 0u32..50_000,
        path_len in 0usize..12,
        batch in collection::vec((0u32..50_000, 0u32..4), 0..8),
    ) {
        let resp = make_response(tag, a, b, path_len, &batch);
        let bytes = encode_response(&resp);
        let decoded = decode_response(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &resp);
        prop_assert_eq!(encode_response(&decoded), bytes);
    }

    #[test]
    fn every_strict_prefix_is_truncated(
        tag in 0u8..10,
        a in 0u32..65536,
        kinds in collection::vec(0u8..2, 0..6),
        ids in collection::vec(0u32..100_000, 0..6),
        cut_permille in 0u32..1000,
    ) {
        let req = make_request(tag, a, 17, make_faults(&kinds, &ids), &[(1, 2), (3, 4)]);
        let bytes = encode_request(&req);
        let cut = (bytes.len() as u64 * cut_permille as u64 / 1000) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert_eq!(decode_request(&bytes[..cut]), Err(DecodeError::Truncated));
    }

    #[test]
    fn corrupt_and_garbage_bytes_never_panic(
        garbage in collection::vec(0u32..256, 0..64),
        tag in 0u8..13,
        a in 0u32..65536,
        flip_pos in 0u32..10_000,
        flip_bit in 0u8..8,
    ) {
        // Pure garbage: decoding must return, Ok or Err, without panicking.
        let bytes: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);

        // A single bit flip in a valid frame: same totality guarantee. The
        // result may legitimately be Ok (another valid frame) — the
        // property is only the absence of panics and of unbounded work.
        let resp = make_response(tag, a, 99, 3, &[(5, 1)]);
        let mut bytes = encode_response(&resp);
        let pos = flip_pos as usize % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        let _ = decode_response(&bytes);
    }
}
