//! Failure-domain tests for the serving tier: a worker panic is a typed
//! reply and a respawn, never a dead server; an expired deadline is shed
//! before compute; a reset connection is something the retry policy heals
//! through; and the health endpoint tells the truth about all of it.

use ftb_chaos::{Chaos, IoFault, WorkerFault};
use ftb_core::EngineOptions;
use ftb_graph::{FaultSet, VertexId};
use ftb_server::protocol::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, Request, Response,
};
use ftb_server::{
    wait_until_ready, wait_until_stopped_with, Client, EngineSpec, RetryPolicy, RetryStats,
    ServeOptions, Server,
};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spec() -> EngineSpec {
    EngineSpec {
        n: 150,
        seed: 23,
        ..EngineSpec::default()
    }
}

fn bind(options: ServeOptions) -> (Server, EngineSpec) {
    let spec = spec();
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new().serial())
        .expect("spec builds");
    let server = Server::bind("127.0.0.1:0", core, options).expect("ephemeral bind");
    assert!(
        wait_until_ready(server.local_addr(), Duration::from_secs(5)),
        "server should accept connections shortly after bind"
    );
    (server, spec)
}

/// Injects one worker fault of the given flavour on the Nth job pickup,
/// then goes quiet. Everything else is a no-op.
struct NthJobFault {
    fire_on: u64,
    flavour: WorkerFault,
    seen: AtomicU64,
}

impl NthJobFault {
    fn new(fire_on: u64, flavour: WorkerFault) -> Self {
        NthJobFault {
            fire_on,
            flavour,
            seen: AtomicU64::new(0),
        }
    }
}

impl Chaos for NthJobFault {
    fn on_job(&self) -> WorkerFault {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.fire_on {
            self.flavour
        } else {
            WorkerFault::None
        }
    }
}

/// Resets the first read, then behaves.
struct ResetFirstRead {
    fired: AtomicU64,
}

impl Chaos for ResetFirstRead {
    fn on_read(&self) -> IoFault {
        if self.fired.fetch_add(1, Ordering::Relaxed) == 0 {
            IoFault::Reset
        } else {
            IoFault::None
        }
    }
}

fn dist_request(spec: &EngineSpec) -> Request {
    Request::Dist {
        source: spec.source(),
        target: VertexId::new(5),
        faults: FaultSet::new(),
    }
}

#[test]
fn caught_worker_panic_is_a_typed_reply_and_the_connection_survives() {
    // The very first job pickup panics *inside* the handler.
    let chaos = Arc::new(NthJobFault::new(1, WorkerFault::Panic));
    let (server, spec) = bind(ServeOptions {
        workers: 1,
        chaos: Some(chaos),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    match client.request(&dist_request(&spec)).expect("io survives") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Internal as u16);
            assert!(
                message.contains("panicked"),
                "message should say what happened, got {message:?}"
            );
        }
        other => panic!("expected Internal error frame, got {other:?}"),
    }

    // Same connection, same (rebuilt-in-place) worker: next query answers.
    match client.request(&dist_request(&spec)).expect("io survives") {
        Response::Dist(d) => assert!(d.is_some(), "connected graph, no faults"),
        other => panic!("expected a distance, got {other:?}"),
    }

    assert_eq!(server.metrics().thread_panics_worker.get(), 1);
    assert_eq!(server.metrics().worker_respawns.get(), 1);
    assert_eq!(server.workers_alive(), server.workers_configured());

    // The panicked request never produced an answer, the follow-up did:
    // worker stats survived the context rebuild monotonically.
    assert_eq!(server.stats().queries, 1);

    client.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn uncaught_worker_panic_respawns_the_worker_and_answers_internal() {
    // The panic fires *outside* the catch, killing the worker thread.
    let chaos = Arc::new(NthJobFault::new(1, WorkerFault::PanicUncaught));
    let (server, spec) = bind(ServeOptions {
        workers: 2,
        chaos: Some(chaos),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // The connection holding the doomed job still gets a typed answer: the
    // reply channel drops with the thread and the connection maps that to
    // Internal.
    match client.request(&dist_request(&spec)).expect("io survives") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Internal as u16),
        other => panic!("expected Internal error frame, got {other:?}"),
    }

    // The supervisor notices the corpse and replaces it. The Internal
    // reply above races the supervisor's join (the connection learns of
    // the death first, through the dropped reply channel), so poll until
    // the respawn is recorded rather than asserting instantly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().worker_respawns.get() < 1
        || server.workers_alive() < server.workers_configured()
    {
        assert!(Instant::now() < deadline, "supervisor never respawned");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.metrics().thread_panics_worker.get(), 1);
    assert_eq!(server.metrics().worker_respawns.get(), 1);

    // The replacement drains jobs like any other worker.
    match client.request(&dist_request(&spec)).expect("io survives") {
        Response::Dist(d) => assert!(d.is_some()),
        other => panic!("expected a distance, got {other:?}"),
    }

    client.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn deadline_expired_in_queue_is_shed_without_running_a_bfs() {
    // A zero budget expires the instant the job is admitted: every request
    // must come back DeadlineExceeded and no query may ever run.
    let (server, spec) = bind(ServeOptions {
        workers: 1,
        request_timeout: Some(Duration::ZERO),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for _ in 0..10 {
        match client.request(&dist_request(&spec)).expect("io survives") {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::DeadlineExceeded as u16);
                assert!(message.contains("queued"), "got {message:?}");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    let stats = server.stats();
    assert_eq!(stats.queries, 0, "no BFS ran for an expired request");
    assert_eq!(
        stats.tier_fault_free_row
            + stats.tier_unaffected_fast_path
            + stats.tier_batched_unaffected
            + stats.tier_sparse_h_bfs
            + stats.tier_augmented_bfs
            + stats.tier_full_graph_bfs,
        0,
        "tier counters untouched"
    );
    assert_eq!(server.metrics().deadline_exceeded_total.get(), 10);

    client.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn client_supplied_deadline_is_honoured() {
    let (server, spec) = bind(ServeOptions::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // A zero client budget expires in-queue even with no server timeout.
    match client
        .request_with_deadline(&dist_request(&spec), Duration::ZERO)
        .expect("io survives")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded as u16),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // A generous budget answers normally, byte-identically to a bare ask.
    let bare = client.request(&dist_request(&spec)).expect("bare");
    let budgeted = client
        .request_with_deadline(&dist_request(&spec), Duration::from_secs(10))
        .expect("budgeted");
    assert_eq!(
        ftb_server::encode_response(&bare),
        ftb_server::encode_response(&budgeted),
        "deadline wrapper must not change the answer"
    );

    client.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn v3_session_sending_a_deadline_gets_protocol_violation_and_survives() {
    let (server, spec) = bind(ServeOptions::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let roundtrip = |stream: &mut TcpStream, req: &Request| -> Response {
        write_frame(stream, &encode_request(req)).expect("write");
        let payload = read_frame(stream).expect("read").expect("frame");
        decode_response(&payload).expect("decode")
    };

    // Negotiate a v3 session explicitly.
    match roundtrip(&mut stream, &Request::Hello { client_version: 3 }) {
        Response::HelloOk { version, .. } => assert_eq!(version, 3),
        other => panic!("handshake failed: {other:?}"),
    }

    // The v4-only deadline wrapper must be rejected as a protocol
    // violation — not crash the session, not silently run.
    let wrapped = Request::Deadline {
        budget_ms: 50,
        inner: Box::new(dist_request(&spec)),
    };
    match roundtrip(&mut stream, &wrapped) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ProtocolViolation as u16),
        other => panic!("expected ProtocolViolation, got {other:?}"),
    }

    // The session is still usable afterwards.
    match roundtrip(&mut stream, &dist_request(&spec)) {
        Response::Dist(d) => assert!(d.is_some()),
        other => panic!("expected a distance, got {other:?}"),
    }
    match roundtrip(&mut stream, &Request::Shutdown) {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    server.join().expect("clean join");
}

#[test]
fn batch_under_deadline_is_complete_or_typed_never_partial() {
    // A tight-but-nonzero budget races the batch: whichever way the race
    // goes, the reply is all answers or one typed error — never a torn
    // batch.
    let (server, spec) = bind(ServeOptions {
        workers: 1,
        request_timeout: Some(Duration::from_millis(2)),
        ..ServeOptions::default()
    });
    let graph = spec.graph();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let queries: Vec<(VertexId, FaultSet)> = (0..40u32)
        .map(|i| {
            let e = ftb_graph::EdgeId(i % graph.num_edges() as u32);
            (
                VertexId((i as usize * 7 % graph.num_vertices()) as u32),
                FaultSet::from(e),
            )
        })
        .collect();
    let total = queries.len();
    match client
        .request(&Request::BatchDist {
            source: spec.source(),
            queries,
        })
        .expect("io survives")
    {
        Response::BatchDist(answers) => assert_eq!(answers.len(), total),
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::DeadlineExceeded as u16);
            assert!(message.contains("batch"), "got {message:?}");
        }
        other => panic!("unexpected batch reply {other:?}"),
    }

    client.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn retry_heals_an_injected_connection_reset() {
    let chaos = Arc::new(ResetFirstRead {
        fired: AtomicU64::new(0),
    });
    let (server, spec) = bind(ServeOptions {
        chaos: Some(chaos),
        ..ServeOptions::default()
    });

    // The handshake read itself may eat the injected reset; if not, the
    // first query does. Either way one reconnect heals it.
    let policy = RetryPolicy::default();
    let mut stats = RetryStats::default();
    let mut client = loop {
        match Client::connect(server.local_addr()) {
            Ok(c) => break c,
            Err(_) => continue,
        }
    };
    let resp = client
        .request_with_retry(&dist_request(&spec), &policy, &mut stats)
        .expect("retry heals the reset");
    match resp {
        Response::Dist(d) => assert!(d.is_some()),
        other => panic!("expected a distance, got {other:?}"),
    }
    assert!(stats.attempts >= 1);

    client.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn shutdown_is_never_retried() {
    let (server, _spec) = bind(ServeOptions::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.shutdown().expect("first shutdown is acknowledged");
    server.join().expect("clean join");

    // The server is gone: a retried read would just fail again, but the
    // point is that Shutdown must not even try — one attempt, no retries.
    let policy = RetryPolicy {
        max_retries: 5,
        ..RetryPolicy::default()
    };
    let mut stats = RetryStats::default();
    let err = client.request_with_retry(&Request::Shutdown, &policy, &mut stats);
    assert!(err.is_err(), "dead server cannot acknowledge");
    assert_eq!(stats.attempts, 1, "exactly one attempt");
    assert_eq!(stats.retries, 0, "shutdown is not idempotent: no retries");
    assert_eq!(stats.reconnects, 0);
}

#[test]
fn healthz_reports_ready_then_unready() {
    let (server, _spec) = bind(ServeOptions {
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServeOptions::default()
    });
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");

    let get_healthz = || -> (String, String) {
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(metrics_addr).expect("metrics connect");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("http write");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("http read");
        let (head, body) = buf.split_once("\r\n\r\n").expect("http response");
        (head.to_string(), body.to_string())
    };

    let (head, body) = get_healthz();
    assert!(head.starts_with("HTTP/1.1 200"), "ready server: {head}");
    assert!(body.contains("\"ready\":true"), "body: {body}");
    assert!(body.contains("\"workers_alive\":2"), "body: {body}");
    assert!(body.contains("\"workers_configured\":2"), "body: {body}");
    assert!(body.contains("\"worker_panics\":0"), "body: {body}");

    server.shutdown();
    // Between the shutdown flag flipping and the metrics listener dying
    // there is a window where /healthz answers 503; accept either a 503 or
    // a refused connection, but never a 200.
    {
        use std::io::{Read, Write};
        // A refused connection means the listener is already gone:
        // acceptably unready. A torn connection mid-request: the same.
        // Only a completed 200 response is a failure.
        if let Ok(mut stream) = TcpStream::connect(metrics_addr) {
            let mut buf = String::new();
            let torn = stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .and_then(|_| stream.read_to_string(&mut buf))
                .is_err()
                || buf.is_empty();
            assert!(
                torn || !buf.starts_with("HTTP/1.1 200"),
                "shutting-down server must not claim readiness: {buf}"
            );
        }
    }
    server.join().expect("clean join");
}

#[test]
fn wait_until_ready_and_stopped_bracket_the_lifecycle() {
    let (server, _spec) = bind(ServeOptions::default());
    let addr = server.local_addr();
    // bind() already asserted readiness; now the other bracket.
    server.shutdown();
    server.join().expect("clean join");
    assert!(
        wait_until_stopped_with(addr, Duration::from_secs(5), Duration::from_millis(2)),
        "stopped server should stop accepting"
    );
}
