//! Lifecycle tests for the TCP server: graceful shutdown with in-flight
//! requests completing, idle/wedged connection reaping, and protocol-state
//! errors (queries before hello, version mismatch).

use ftb_core::EngineOptions;
use ftb_graph::{FaultSet, VertexId};
use ftb_server::protocol::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, Request, Response,
    PROTOCOL_VERSION,
};
use ftb_server::{wait_until_stopped, Client, EngineSpec, ServeOptions, Server};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(options: ServeOptions) -> (Server, EngineSpec) {
    let spec = EngineSpec {
        n: 80,
        ..EngineSpec::default()
    };
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new().serial())
        .expect("spec builds");
    let server = Server::bind("127.0.0.1:0", Arc::clone(&core), options).expect("ephemeral bind");
    (server, spec)
}

fn raw_connect(server: &Server) -> TcpStream {
    TcpStream::connect(server.local_addr()).expect("connect")
}

fn send_raw(stream: &mut TcpStream, req: &Request) {
    write_frame(stream, &encode_request(req)).expect("write frame");
}

fn recv_raw(stream: &mut TcpStream) -> Option<Response> {
    read_frame(stream)
        .expect("read frame")
        .map(|payload| decode_response(&payload).expect("decode response"))
}

#[test]
fn shutdown_lets_in_flight_requests_complete() {
    let (server, spec) = start_server(ServeOptions {
        workers: 2,
        queue_depth: 16,
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });
    let addr = server.local_addr();

    // Client 1: handshake, then put a sizeable batch in flight without
    // reading the answer yet.
    let mut c1 = raw_connect(&server);
    send_raw(
        &mut c1,
        &Request::Hello {
            client_version: PROTOCOL_VERSION,
        },
    );
    assert!(matches!(recv_raw(&mut c1), Some(Response::HelloOk { .. })));
    let graph = spec.graph();
    let batch: Vec<(VertexId, FaultSet)> = graph.vertices().map(|v| (v, FaultSet::new())).collect();
    let batch_len = batch.len();
    send_raw(
        &mut c1,
        &Request::BatchDist {
            source: spec.source(),
            queries: batch,
        },
    );
    // Give the connection thread time to pull the frame off the socket.
    std::thread::sleep(Duration::from_millis(100));

    // Client 2: graceful shutdown.
    let mut c2 = Client::connect(addr).expect("second client");
    c2.shutdown().expect("shutdown acknowledged");

    // The in-flight batch still gets its full answer before the close.
    match recv_raw(&mut c1) {
        Some(Response::BatchDist(answers)) => assert_eq!(answers.len(), batch_len),
        other => panic!("in-flight batch lost on shutdown: {other:?}"),
    }
    // ...and the connection then closes cleanly.
    assert!(recv_raw(&mut c1).is_none(), "connection should be closed");

    server.join().expect("clean join");
    assert!(
        wait_until_stopped(addr, Duration::from_secs(5)),
        "port should stop accepting after shutdown"
    );
}

#[test]
fn idle_and_wedged_connections_are_reaped() {
    let (server, _spec) = start_server(ServeOptions {
        workers: 1,
        queue_depth: 4,
        idle_timeout: Duration::from_millis(200),
        ..ServeOptions::default()
    });

    // Fully idle connection: closed after the idle timeout.
    let mut idle = raw_connect(&server);
    let start = Instant::now();
    assert!(
        recv_raw(&mut idle).is_none(),
        "idle connection should be closed by the server"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "idle reap took {:?}",
        start.elapsed()
    );

    // Wedged connection: half a length prefix, then silence. The server
    // must not wait forever for the rest of the frame.
    let mut wedged = raw_connect(&server);
    wedged.write_all(&[0x03, 0x00]).expect("partial prefix");
    wedged.flush().expect("flush");
    let start = Instant::now();
    assert!(
        recv_raw(&mut wedged).is_none(),
        "wedged connection should be closed by the server"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "wedged reap took {:?}",
        start.elapsed()
    );

    // The server is still healthy for well-behaved clients afterwards.
    let mut c = Client::connect(server.local_addr()).expect("connect after reaps");
    let stats = c.stats().expect("stats");
    assert!(stats.connections >= 3);

    server.shutdown();
    drop(c);
    server.join().expect("clean join");
}

#[test]
fn protocol_state_violations_get_typed_errors() {
    let (server, spec) = start_server(ServeOptions {
        workers: 1,
        queue_depth: 4,
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });

    // Query before hello.
    let mut eager = raw_connect(&server);
    send_raw(
        &mut eager,
        &Request::Dist {
            source: spec.source(),
            target: VertexId(1),
            faults: FaultSet::new(),
        },
    );
    match recv_raw(&mut eager) {
        Some(Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::ProtocolViolation as u16)
        }
        other => panic!("expected protocol violation, got {other:?}"),
    }

    // Wrong protocol version: rejected, then closed.
    let mut wrong = raw_connect(&server);
    send_raw(
        &mut wrong,
        &Request::Hello {
            client_version: PROTOCOL_VERSION + 1,
        },
    );
    match recv_raw(&mut wrong) {
        Some(Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::ProtocolViolation as u16)
        }
        other => panic!("expected version rejection, got {other:?}"),
    }
    assert!(recv_raw(&mut wrong).is_none(), "closed after version error");

    // Malformed frame: typed error, then closed.
    let mut garbled = raw_connect(&server);
    write_frame(&mut garbled, &[0x7f, 1, 2, 3]).expect("write garbage");
    match recv_raw(&mut garbled) {
        Some(Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::MalformedFrame as u16)
        }
        other => panic!("expected malformed-frame error, got {other:?}"),
    }
    assert!(recv_raw(&mut garbled).is_none(), "closed after bad frame");

    server.shutdown();
    server.join().expect("clean join");
}

#[test]
fn out_of_range_queries_map_to_engine_error_codes() {
    let (server, spec) = start_server(ServeOptions {
        workers: 1,
        queue_depth: 4,
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let n = client.info().num_vertices;
    match client
        .dist(spec.source(), VertexId(n + 7), FaultSet::new())
        .expect("io ok")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::VertexOutOfRange as u16),
        other => panic!("expected vertex-out-of-range, got {other:?}"),
    }
    server.shutdown();
    drop(client);
    server.join().expect("clean join");
}
