//! End-to-end tests of the observability surface: the v3 metrics and
//! slow-query frames, version gating for v2 sessions, the per-connection
//! cell merge, and the plaintext HTTP scrape endpoint.

use ftb_core::EngineOptions;
use ftb_graph::{EdgeId, FaultSet, VertexId};
use ftb_server::protocol::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, MetricsFormat, Request,
    Response, MIN_PROTOCOL_VERSION,
};
use ftb_server::{Client, EngineSpec, ServeOptions, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_server(options: ServeOptions) -> (Server, EngineSpec) {
    let spec = EngineSpec {
        n: 80,
        ..EngineSpec::default()
    };
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new().serial())
        .expect("spec builds");
    let server = Server::bind("127.0.0.1:0", Arc::clone(&core), options).expect("ephemeral bind");
    (server, spec)
}

fn send_raw(stream: &mut TcpStream, req: &Request) {
    write_frame(stream, &encode_request(req)).expect("write frame");
}

fn recv_raw(stream: &mut TcpStream) -> Option<Response> {
    read_frame(stream)
        .expect("read frame")
        .map(|payload| decode_response(&payload).expect("decode response"))
}

#[test]
fn metrics_frame_reflects_served_queries() {
    let (server, spec) = start_server(ServeOptions {
        workers: 2,
        queue_depth: 16,
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Drive a few queries through every routing shape.
    let targets: Vec<VertexId> = (0..40).map(VertexId).collect();
    client
        .dist_many(spec.source(), targets, FaultSet::from(EdgeId(0)))
        .expect("dist_many");
    client
        .dist(spec.source(), VertexId(7), FaultSet::new())
        .expect("dist");

    let text = client.metrics_text().expect("metrics frame");
    assert!(text.contains("# TYPE ftb_requests_total counter"), "{text}");
    assert!(
        text.contains("ftb_requests_total{op=\"dist_many\"} 1"),
        "{text}"
    );
    assert!(text.contains("ftb_requests_total{op=\"dist\"} 1"), "{text}");
    // Stage histograms recorded by workers and connection threads.
    assert!(
        text.contains("ftb_request_queue_wait_seconds_count"),
        "{text}"
    );
    assert!(text.contains("ftb_request_handle_seconds_count"), "{text}");
    assert!(
        text.contains("ftb_connection_decode_seconds_count"),
        "{text}"
    );
    assert!(text.contains("ftb_response_encode_seconds_count"), "{text}");
    // Per-tier latency histograms from the attached EngineObs (sampling is
    // on by default): the fault-free dist answers put samples somewhere in
    // the tier family.
    assert!(
        text.contains("ftb_query_tier_latency_seconds_count"),
        "{text}"
    );
    // Build-phase provenance gauges.
    assert!(text.contains("ftb_build_phase_seconds"), "{text}");

    // JSON exposition of the same registry.
    let json = client.metrics_json().expect("metrics json");
    assert!(
        json.contains("\"ftb_requests_total{op=\\\"dist\\\"}\""),
        "{json}"
    );

    // The handle-time histogram has exactly as many samples as jobs ran.
    let handle_count = server.metrics().handle.count();
    assert_eq!(handle_count, 2, "two query jobs were handled");

    server.shutdown();
    drop(client);
    server.join().expect("clean join");
}

#[test]
fn slow_query_board_reports_shape_and_stages() {
    let (server, spec) = start_server(ServeOptions {
        workers: 1,
        queue_depth: 8,
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let faults = FaultSet::from(EdgeId(3));
    let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
    client
        .dist_many(spec.source(), targets, faults.clone())
        .expect("dist_many");

    let board = client.slow_queries().expect("slow query frame");
    assert!(!board.is_empty(), "the one query makes the board");
    let top = &board[0];
    assert_eq!(top.opcode, 0x07, "DistMany opcode");
    assert_eq!(top.source, spec.source());
    assert_eq!(top.targets, 25);
    assert_eq!(top.faults, faults, "fault set rides along");
    assert!(top.handle_nanos > 0, "handle stage measured");
    let tier_answers: u64 = top.tiers.iter().sum();
    assert_eq!(tier_answers, 25, "every target attributed to a tier");

    server.shutdown();
    drop(client);
    server.join().expect("clean join");
}

#[test]
fn v2_sessions_work_but_cannot_use_v3_frames() {
    let (server, spec) = start_server(ServeOptions {
        workers: 1,
        queue_depth: 8,
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });
    let mut v2 = TcpStream::connect(server.local_addr()).expect("connect");

    // A v2 hello negotiates version 2 and the session serves queries.
    send_raw(
        &mut v2,
        &Request::Hello {
            client_version: MIN_PROTOCOL_VERSION,
        },
    );
    match recv_raw(&mut v2) {
        Some(Response::HelloOk { version, .. }) => assert_eq!(version, MIN_PROTOCOL_VERSION),
        other => panic!("v2 hello rejected: {other:?}"),
    }
    send_raw(
        &mut v2,
        &Request::Dist {
            source: spec.source(),
            target: VertexId(3),
            faults: FaultSet::new(),
        },
    );
    assert!(matches!(recv_raw(&mut v2), Some(Response::Dist(Some(_)))));

    // ...but the v3 observability frames are version-gated.
    for req in [
        Request::Metrics {
            format: MetricsFormat::Prometheus,
        },
        Request::SlowQueries,
    ] {
        send_raw(&mut v2, &req);
        match recv_raw(&mut v2) {
            Some(Response::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::ProtocolViolation as u16, "{req:?}")
            }
            other => panic!("expected version gate for {req:?}, got {other:?}"),
        }
    }

    // The gate is a reply, not a hangup: the session still answers.
    send_raw(&mut v2, &Request::Stats);
    assert!(matches!(recv_raw(&mut v2), Some(Response::Stats(_))));

    server.shutdown();
    drop(v2);
    server.join().expect("clean join");
}

#[test]
fn http_endpoint_serves_prometheus_text() {
    let (server, spec) = start_server(ServeOptions {
        workers: 1,
        queue_depth: 8,
        idle_timeout: Duration::from_secs(5),
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServeOptions::default()
    });
    let metrics_addr = server.metrics_addr().expect("metrics listener bound");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .dist(spec.source(), VertexId(5), FaultSet::from(EdgeId(1)))
        .expect("dist");

    let fetch = |path: &str| {
        let mut http = TcpStream::connect(metrics_addr).expect("connect metrics");
        write!(http, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send request");
        let mut body = String::new();
        http.read_to_string(&mut body).expect("read response");
        body
    };

    let scrape = fetch("/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(
        scrape.contains("ftb_requests_total{op=\"dist\"} 1"),
        "{scrape}"
    );
    assert!(
        scrape.contains("ftb_request_queue_wait_seconds_count 1"),
        "{scrape}"
    );

    let json = fetch("/metrics.json");
    assert!(json.contains("application/json"), "{json}");
    assert!(json.contains("ftb_connections_total"), "{json}");

    let slow = fetch("/slow");
    assert!(slow.contains("\"opcode\":2"), "{slow}");

    let missing = fetch("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    server.shutdown();
    drop(client);
    server.join().expect("clean join");
}
