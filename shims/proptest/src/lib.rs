//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the pieces the test suites consume:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`
//!   header) expanding each case into a plain `#[test]` loop over randomly
//!   generated inputs,
//! * [`strategy::Strategy`] with implementations for integer and float
//!   ranges, tuples, [`prelude::any`]`::<bool>()`,
//!   [`collection::vec`] and [`collection::btree_set`],
//! * `prop_assert!` / `prop_assert_eq!` mapped onto the std assertions.
//!
//! Differences from real proptest, deliberately accepted: no shrinking (a
//! failing case reports its seed and case number instead), and a fixed
//! deterministic seed per test function so CI failures reproduce locally.

#![forbid(unsafe_code)]

pub mod strategy {
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a generator; the `proptest!` expansion derives the seed from
        /// the test name and case index.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` below `bound` (0 for `bound == 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128) % bound as u128) as usize
        }
    }

    /// A value generator: the core abstraction of proptest.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    self.start + v as $t
                }
            }
        )*};
    }

    impl_strategy_uint_range!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// Strategy for `any::<T>()` (only the instantiations we need).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        /// Construct the marker strategy.
        pub fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident . $idx:tt),+));+ $(;)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_tuple! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy wrapper produced by [`crate::collection::vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy wrapper produced by [`crate::collection::btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let target = self.size.start + rng.below(span);
            // Best-effort sizing: duplicates may make the set smaller than
            // `target`, which proptest also permits for saturated domains.
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(4) + 4 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::{BTreeSetStrategy, Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Ordered sets with roughly `size.start..size.end` elements.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 32 keeps the offline suite fast
            // while still exercising a meaningful slice of the input space.
            Config { cases: 32 }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Any, Strategy, TestRng};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `any::<T>()` — arbitrary values of `T` (only `bool` is instantiated
    /// by this workspace).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any::new()
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Expand property definitions into deterministic `#[test]` loops.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Deterministic per-test seed: the test path hashed via FNV-1a.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            for case in 0..config.cases as u64 {
                let mut rng = $crate::strategy::TestRng::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                run();
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(n in 1usize..40, pair in (0u32..10, 0u32..10)) {
            prop_assert!((1..40).contains(&n));
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn collections_respect_bounds(
            v in crate::collection::vec((0usize..256, any::<bool>()), 0..20),
            s in crate::collection::btree_set(0usize..50, 0..10),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(s.len() < 10);
            prop_assert!(v.iter().all(|(x, _)| *x < 256));
            prop_assert!(s.iter().all(|x| *x < 50));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::{Strategy, TestRng};
        let mut a = TestRng::new(77);
        let mut b = TestRng::new(77);
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
