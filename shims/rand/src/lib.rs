//! Offline stand-in for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact surface the workspace consumes — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] /
//! [`Rng::random_bool`] and [`seq::SliceRandom::shuffle`] — backed by a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//!
//! Determinism is the only property the workspace relies on (all seeds are
//! explicit and experiments must be reproducible); statistical quality of
//! xoshiro256** is far beyond what tie-breaking and workload generation need.
//! The stream differs from the real `StdRng` (ChaCha12), which is fine: no
//! test pins concrete draws, only same-seed reproducibility.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random generators (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator trait: `u64` output plus the derived sampling helpers.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (Lemire-style rejection-free enough for our
    /// purposes: modulo with 128-bit widening avoids visible bias).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u128;
                let value = (rng.next_u64() as u128) % span;
                self.start + value as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (the subset of `rand::seq` we need).
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert!((0..10).any(|_| a.next_u64() != c.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(5..17u64);
            assert!((5..17).contains(&v));
            let u: usize = rng.random_range(0..3usize);
            assert!(u < 3);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
