//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses (the build environment has no crates.io access).
//!
//! The statistical machinery of real criterion is replaced by a simple
//! warm-up + fixed-sample measurement loop that prints mean / min / max per
//! benchmark. The API shape (groups, `BenchmarkId`, `bench_with_input`,
//! `iter`, the `criterion_group!` / `criterion_main!` macros) matches, so the
//! bench sources compile unchanged against real criterion when it is
//! available.
//!
//! # Regression baselines
//!
//! In place of real criterion's `--save-baseline` machinery, the shim reads
//! two environment variables when a bench binary finishes
//! (`criterion_main!` calls [`finish`]):
//!
//! * `FTBFS_BENCH_JSON=path` — dump every benchmark's mean wall time (in
//!   nanoseconds) as a flat JSON object `{"group/id": mean_ns, ...}`. Commit
//!   the file to pin a baseline.
//! * `FTBFS_BENCH_BASELINE=path` — load a previously dumped baseline and
//!   **exit non-zero** if any benchmark regressed by more than
//!   `FTBFS_BENCH_MAX_REGRESSION` (a fraction, default `0.25` = 25%) against
//!   it. Benchmarks missing from the baseline are reported but don't fail,
//!   so adding a bench doesn't require regenerating the file in the same
//!   change.
//!
//! Both are skipped in `--test` quick mode, where a single untimed pass
//! makes the numbers meaningless.
//!
//! # Calibration
//!
//! Committed baselines are recorded on one machine but enforced on
//! heterogeneous CI runners. To share one baseline file across machines,
//! every dump includes a `__calibration` entry: the mean wall time of a
//! fixed BFS sweep over a synthetic CSR graph — a miniature of the gated
//! workloads themselves, so its cost profile (and, measured empirically,
//! its run-to-run stability) matches the benchmark means it scales. When a
//! gated run finds that entry in the baseline, each comparison is
//! normalised by the speed ratio `calibration_now / calibration_baseline` —
//! a runner that is uniformly 2× slower sees its tolerance window shifted
//! by ~2× before the check, so the gate measures *relative* regressions
//! rather than runner speed. Set `FTBFS_BENCH_CALIBRATION=0` to disable
//! the normalisation (raw comparison, the pre-calibration behaviour).
//!
//! Committed baselines are best taken as an element-wise **max over a few
//! dumps** (with a median `__calibration`): serving means on shared
//! runners are bimodal at the tens-of-percent level, and a max-merged
//! baseline covers the slow mode so a gate run in either mode only fails
//! on a genuine regression.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Mean wall times of every benchmark run by this process, in report order.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one setup per timed invocation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per iteration.
    #[default]
    PerIteration,
    /// Small batches in real criterion; per-iteration here.
    SmallInput,
    /// Large batches in real criterion; per-iteration here.
    LargeInput,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly; one invocation is one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measure `routine` on inputs produced by `setup`, timing only the
    /// routine — use when per-iteration input construction (clones,
    /// allocations) must stay out of the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the fixed-sample loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_sample_size(),
            warm_up_time: self.effective_warm_up(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_sample_size(),
            warm_up_time: self.effective_warm_up(),
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Finish the group (printing happens eagerly; nothing to flush).
    pub fn finish(&mut self) {}

    fn effective_sample_size(&self) -> usize {
        if self.criterion.quick_mode {
            1
        } else {
            self.sample_size
        }
    }

    fn effective_warm_up(&self) -> Duration {
        if self.criterion.quick_mode {
            Duration::ZERO
        } else {
            self.warm_up_time
        }
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "{}/{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.name,
            samples.len()
        );
        if !self.criterion.quick_mode {
            RESULTS
                .lock()
                .expect("bench results poisoned")
                .push((format!("{}/{id}", self.name), mean.as_nanos() as f64));
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    quick_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `--test`-mode bench binaries; a single untimed
        // pass then just asserts the benchmarks still run.
        let quick_mode = std::env::args().any(|a| a == "--test");
        Criterion { quick_mode }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            criterion: self,
        }
    }

    /// Run a stand-alone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.benchmark_group(label.clone()).bench_function("", f);
        self
    }
}

/// Key of the calibration entry in dumped baselines (not a benchmark).
const CALIBRATION_KEY: &str = "__calibration";

/// Wall time (ns) of the calibration workload: a full BFS sweep over a
/// deterministic synthetic CSR graph (4096 vertices, average degree 8) —
/// a **miniature of the gated benchmarks themselves**, so its machine
/// profile (CSR scans, frontier queue, branchy per-edge work) matches what
/// the recorded means are dominated by. Measured with the same protocol as
/// a benchmark: a warm-up pass, then the mean of many samples rotating the
/// BFS source.
///
/// Empirically this tracks the benches' run-to-run stability (a few
/// percent) where synthetic microbenchmarks did not: on a shared/virtual
/// runner, a pure pointer-chase probe measured up to ~2× process-to-process
/// spread while the actual BFS means moved < 10%.
fn calibration_ns() -> f64 {
    const N: usize = 4096;
    const DEG: usize = 8;
    // Deterministic pseudo-random multigraph in CSR form (directed slots,
    // DEG per vertex) — same shape the gated benches traverse.
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x as usize) & (N - 1)
    };
    let targets: Vec<u32> = (0..N * DEG).map(|_| step() as u32).collect();

    let mut dist = vec![u32::MAX; N];
    let mut queue: Vec<u32> = Vec::with_capacity(N);
    let mut bfs = |source: usize| {
        dist.fill(u32::MAX);
        queue.clear();
        dist[source] = 0;
        queue.push(source as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            let du = dist[u];
            for &w in &targets[u * DEG..(u + 1) * DEG] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    queue.push(w);
                }
            }
        }
        queue.len()
    };

    const WARMUP: usize = 50;
    const SAMPLES: usize = 200;
    let mut reached = 0usize;
    for s in 0..WARMUP {
        reached = reached.max(bfs(s % N));
    }
    let start = Instant::now();
    for s in 0..SAMPLES {
        reached = reached.max(bfs((s * 31) % N));
    }
    let total = start.elapsed().as_nanos() as f64;
    std::hint::black_box(reached);
    total / SAMPLES as f64
}

/// Serialise benchmark means as a flat JSON object, one `"id": mean_ns`
/// entry per line.
fn to_json(results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (id, mean_ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!("  \"{id}\": {mean_ns:.1}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parse the flat `{"id": number, ...}` JSON emitted by [`to_json`]. Not a
/// general JSON parser — exactly the baseline format, which contains no
/// escapes or nesting.
fn parse_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for entry in text.split(',') {
        let Some(open) = entry.find('"') else {
            continue;
        };
        let Some(close) = entry[open + 1..].find('"') else {
            continue;
        };
        let id = &entry[open + 1..open + 1 + close];
        let Some(colon) = entry[open + 1 + close..].find(':') else {
            continue;
        };
        let value = entry[open + 1 + close + colon + 1..]
            .trim()
            .trim_end_matches(['}', '\n', ' ']);
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((id.to_string(), v));
        }
    }
    out
}

/// Finalise a bench-binary run: dump the JSON baseline (`FTBFS_BENCH_JSON`)
/// and enforce the committed baseline (`FTBFS_BENCH_BASELINE`, tolerance
/// `FTBFS_BENCH_MAX_REGRESSION`, default 0.25). Called by the expansion of
/// [`criterion_main!`]; a no-op in `--test` quick mode and when neither
/// variable is set.
pub fn finish() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let results = RESULTS.lock().expect("bench results poisoned");
    let baseline_path = std::env::var("FTBFS_BENCH_BASELINE").ok();
    let dump_path = std::env::var("FTBFS_BENCH_JSON").ok();
    // One calibration run serves both the dump and the gate.
    let calibration = (dump_path.is_some() || baseline_path.is_some()).then(calibration_ns);
    if let Some(path) = dump_path {
        let mut dump = results.clone();
        dump.push((
            CALIBRATION_KEY.to_string(),
            calibration.expect("calibrated when dumping"),
        ));
        std::fs::write(&path, to_json(&dump))
            .unwrap_or_else(|e| panic!("cannot write bench baseline {path}: {e}"));
        println!("wrote bench baseline ({} entries) to {path}", dump.len());
    }
    let Some(baseline_path) = baseline_path else {
        return;
    };
    let max_regression = std::env::var("FTBFS_BENCH_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read bench baseline {baseline_path}: {e}"));
    let baseline = parse_json(&text);
    // Normalise by the runner-speed ratio when the committed baseline
    // carries a calibration entry (and the caller didn't opt out).
    let calibrate = std::env::var("FTBFS_BENCH_CALIBRATION").as_deref() != Ok("0");
    let scale = match baseline.iter().find(|(id, _)| id == CALIBRATION_KEY) {
        Some((_, base_cal)) if calibrate && *base_cal > 0.0 => {
            let now = calibration.expect("calibrated when gating");
            let scale = now / base_cal;
            println!(
                "calibration: this runner {now:.0}ns vs baseline {base_cal:.0}ns \
                 (normalising by {scale:.3}x)"
            );
            scale
        }
        _ => 1.0,
    };
    let mut failures = Vec::new();
    for (id, mean_ns) in results.iter() {
        match baseline.iter().find(|(bid, _)| bid == id) {
            Some((_, base_ns)) => {
                let ratio = mean_ns / (base_ns * scale);
                let status = if ratio > 1.0 + max_regression {
                    failures.push(id.clone());
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "baseline {id}: {mean_ns:.0}ns vs {:.0}ns normalised ({:+.1}%) {status}",
                    base_ns * scale,
                    (ratio - 1.0) * 100.0
                );
            }
            None => println!("baseline {id}: no committed entry (skipped)"),
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "{} benchmark(s) regressed more than {:.0}% vs {baseline_path}: {}",
            failures.len(),
            max_regression * 100.0,
            failures.join(", ")
        );
        std::process::exit(1);
    }
}

/// Group benchmark functions into a single registration entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit the `main` function running the given groups, then finalising the
/// baseline dump/check (see the crate docs).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).warm_up_time(Duration::ZERO);
        group.bench_function("add", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn baseline_json_round_trips() {
        let results = vec![
            ("multi_fault/random-edges/f=1".to_string(), 123456.7),
            ("multi_fault/tree/f=2".to_string(), 89.0),
        ];
        let json = to_json(&results);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        let parsed = parse_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, results[0].0);
        assert!((parsed[0].1 - results[0].1).abs() < 0.2);
        assert_eq!(parsed[1].0, results[1].0);
        assert!((parsed[1].1 - results[1].1).abs() < 0.2);
        assert_eq!(parse_json("{\n}\n"), Vec::new());
    }

    #[test]
    fn calibration_measures_real_work() {
        // No stability assertion: wall-clock ratios flake under CI
        // preemption. A floor guards against the BFS loop being optimised
        // away — 200 sweeps over a 4096-vertex, 32k-slot CSR cannot
        // average under a microsecond on any real machine.
        let a = calibration_ns();
        assert!(a > 1_000.0, "calibration suspiciously fast: {a}ns");
    }

    #[test]
    fn calibration_entry_round_trips_through_json() {
        let results = vec![
            ("group/bench".to_string(), 1000.0),
            (CALIBRATION_KEY.to_string(), 2_000_000.0),
        ];
        let parsed = parse_json(&to_json(&results));
        let cal = parsed.iter().find(|(id, _)| id == CALIBRATION_KEY);
        assert_eq!(cal.map(|(_, v)| *v), Some(2_000_000.0));
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion { quick_mode: true };
        sample_bench(&mut c);
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
