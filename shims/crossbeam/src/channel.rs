//! Offline stand-in for the `crossbeam::channel` bounded MPMC channel.
//!
//! Only the surface the workspace uses is provided: [`bounded`] capacity-`n`
//! channels with cloneable senders *and* receivers, blocking
//! [`Sender::send`] / [`Receiver::recv`], the non-blocking
//! [`Sender::try_send`] (the admission-control primitive — a full queue is
//! reported as [`TrySendError::Full`] instead of buffering unboundedly) and
//! [`Receiver::recv_timeout`]. Disconnection semantics match crossbeam:
//! once every `Sender` is dropped, receivers drain the remaining queue and
//! then observe `Disconnected`; once every `Receiver` is dropped, sends fail
//! immediately.
//!
//! The implementation is a `Mutex<VecDeque>` with two condvars (`not_empty`,
//! `not_full`) — not a lock-free ring, but the contract and the observable
//! behaviour are the ones the serving stack is written against.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared state of one channel.
struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

/// Error of a blocking [`Sender::send`]: every receiver is gone. The
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of a non-blocking [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the message is handed back. This is the
    /// backpressure signal admission control acts on.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error of a blocking [`Receiver::recv`]: the queue is empty and every
/// sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error of a [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

/// Error of a non-blocking [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty.
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

/// The sending half of a bounded channel (cloneable; MPMC).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a bounded channel (cloneable; MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create a bounded MPMC channel holding at most `capacity` queued
/// messages (minimum 1 — crossbeam's zero-capacity rendezvous mode is not
/// reproduced, and no caller here wants it).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueue `msg`, blocking while the queue is at capacity. Fails only
    /// when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(msg);
                drop(inner);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            inner = self.chan.not_full.wait(inner).unwrap();
        }
    }

    /// Enqueue `msg` without blocking: [`TrySendError::Full`] when the
    /// queue is at capacity, [`TrySendError::Disconnected`] when every
    /// receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.queue.len() >= inner.capacity {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they can observe disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the oldest message, blocking while the queue is empty.
    /// Fails once the queue is drained *and* every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).unwrap();
        }
    }

    /// Like [`Receiver::recv`] with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .chan
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if result.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they can observe disconnection.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn try_send_reports_full_at_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn receivers_drain_then_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        tx.try_send(7).unwrap();
        tx.try_send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
    }

    #[test]
    fn recv_timeout_expires_on_an_empty_queue() {
        let (_tx, rx) = bounded::<u32>(1);
        let t = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn mpmc_under_contention_delivers_every_message_once() {
        let (tx, rx) = bounded::<usize>(3);
        let producers = 4;
        let per_producer = 200;
        let consumers = 3;
        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send(p * per_producer + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumer_handles = Vec::new();
        for _ in 0..consumers {
            let rx = rx.clone();
            consumer_handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = consumer_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn blocking_send_waits_for_space() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        sender.join().unwrap();
    }
}
