//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! the `crossbeam::scope` API, backed by `std::thread::scope` (stable since
//! Rust 1.63), and the bounded MPMC [`channel`] the query server's
//! admission-controlled request queue is built on.
//!
//! For scopes, only `crossbeam::scope(|s| { s.spawn(|_| ...); })` returning
//! a `Result` that is `Ok` when no worker panicked is provided. Worker
//! panics propagate out of `std::thread::scope` as a panic of the scope call
//! itself, which we surface through `catch_unwind` to match crossbeam's
//! `Err` contract (callers `.expect(...)` on it).

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Error payload of a panicked scope, as in crossbeam.
pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

/// Opaque handle passed to spawned closures (crossbeam passes the scope
/// itself; every call site in this workspace ignores the argument).
#[derive(Clone, Copy, Debug)]
pub struct ScopeHandle(());

/// A scope in which worker threads can borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker thread.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(ScopeHandle) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(ScopeHandle(())))
    }
}

/// Run `f` with a scope object; all threads spawned through it are joined
/// before `scope` returns. Returns `Err` if any worker (or `f`) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_worker_reports_err() {
        let out = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(out.is_err());
    }
}
