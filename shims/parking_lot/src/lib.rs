//! Offline stand-in for `parking_lot::Mutex`, backed by `std::sync::Mutex`.
//!
//! Matches the parking_lot contract the workspace relies on: `lock()` returns
//! the guard directly (no poisoning `Result`). Poison is transparently
//! ignored — a poisoned std mutex still hands out its data, which is exactly
//! parking_lot's behaviour after a panicking critical section.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return the protected data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
