//! The one-to-many suite: `dist_many_after_faults` must be
//! **byte-identical** to per-target `dist_after_faults` calls — across
//! every workload family, every fault-scenario family, both the normal
//! engine and the forced-full-sweep engine — and all-unaffected target
//! sets must be answered with **zero** BFS sweeps, proven through the
//! engine's counters.
//!
//! The batched path has three internal routes (batched-unaffected from the
//! fault-free row, target-restricted repair sweep, dense full-row
//! materialisation); the identity tests below hit all of them by mixing
//! sparse target lists, all-vertex target lists, duplicates, the source
//! itself, and failed vertices as targets.

use ftbfs::graph::{FaultSet, VertexId};
use ftbfs::workloads::{FaultScenario, Workload, WorkloadFamily};
use ftbfs::{
    EngineOptions, FaultQueryEngine, MultiSourceBuilder, MultiSourceEngine, Sources,
    StructureBuilder, TradeoffBuilder,
};

const SEED: u64 = 0x12A7;

fn repaired_options() -> EngineOptions {
    EngineOptions::new().serial().with_force_full_sweep(false)
}

fn forced_options() -> EngineOptions {
    EngineOptions::new().serial().with_force_full_sweep(true)
}

fn small_workloads(target_n: usize) -> Vec<(String, ftbfs::graph::Graph)> {
    WorkloadFamily::all()
        .iter()
        .map(|&family| {
            let w = Workload::new(family, target_n, SEED);
            (w.label(), w.generate())
        })
        .collect()
}

fn build_engine(graph: &ftbfs::graph::Graph, options: EngineOptions) -> FaultQueryEngine<'_> {
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    FaultQueryEngine::with_options(graph, structure, options).expect("matching graph")
}

/// The target shapes every identity check runs: a sparse spread-out list,
/// the dense all-vertex list, and a pathological list with duplicates, the
/// source, and (when present) a failed vertex.
fn target_shapes(graph: &ftbfs::graph::Graph, faults: &FaultSet) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    let sparse: Vec<VertexId> = (0..8)
        .map(|i| VertexId(((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as u32))
        .collect();
    let dense: Vec<VertexId> = graph.vertices().collect();
    let mut weird = vec![
        VertexId(0),
        VertexId((n as u32) - 1),
        VertexId(0),
        VertexId(1),
    ];
    if let Some(v) = faults.vertices().next() {
        weird.push(v);
        weird.push(v);
    }
    vec![sparse, dense, weird, Vec::new()]
}

/// One-to-many answers equal `targets.len()` separate per-target queries,
/// on every workload family × fault scenario, in the normal engine **and**
/// the forced-full-sweep engine (which takes the exact per-target code
/// path internally).
#[test]
fn dist_many_matches_per_target_on_every_family_and_scenario() {
    for (name, graph) in small_workloads(26) {
        // Separate engines so the reference answers cannot share LRU or
        // scratch state with the batched path.
        let mut batched = build_engine(&graph, repaired_options());
        let mut reference = build_engine(&graph, repaired_options());
        let mut forced = build_engine(&graph, forced_options());
        for &scenario in FaultScenario::all() {
            for f in [1usize, 2] {
                for faults in scenario
                    .generate(&graph, VertexId(0), f, 6, SEED)
                    .iter()
                    .filter(|s| !s.is_empty())
                {
                    for targets in target_shapes(&graph, faults) {
                        let many = batched
                            .dist_many_after_faults(&targets, faults)
                            .expect("in range");
                        let forced_many = forced
                            .dist_many_after_faults(&targets, faults)
                            .expect("in range");
                        let serial: Vec<Option<u32>> = targets
                            .iter()
                            .map(|&v| reference.dist_after_faults(v, faults).expect("in range"))
                            .collect();
                        assert_eq!(
                            many,
                            serial,
                            "{name}/{}/f={f}: batched != per-target under {faults}",
                            scenario.name()
                        );
                        assert_eq!(
                            forced_many,
                            serial,
                            "{name}/{}/f={f}: forced batched != per-target under {faults}",
                            scenario.name()
                        );
                    }
                }
            }
        }
    }
}

/// The multi-source twin: per-slot one-to-many answers equal per-target
/// queries for every served source.
#[test]
fn multi_source_dist_many_matches_per_target() {
    let graph = Workload::new(WorkloadFamily::GridChords, 25, SEED).generate();
    let sources = vec![VertexId(0), VertexId(7), VertexId(19)];
    let mbfs = MultiSourceBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build_multi(&graph, &Sources::multi(sources.clone()))
        .expect("valid input");
    let mut batched = MultiSourceEngine::with_options(&graph, mbfs.clone(), repaired_options())
        .expect("matching graph");
    let mut reference =
        MultiSourceEngine::with_options(&graph, mbfs, repaired_options()).expect("matching graph");
    let targets: Vec<VertexId> = graph.vertices().collect();
    for &s in &sources {
        for faults in FaultScenario::TreeConcentrated
            .generate(&graph, s, 2, 6, SEED)
            .iter()
            .filter(|f| !f.is_empty())
        {
            let many = batched
                .dist_many_after_faults(s, &targets, faults)
                .expect("in range");
            let serial: Vec<Option<u32>> = targets
                .iter()
                .map(|&v| reference.dist_after_faults(s, v, faults).expect("in range"))
                .collect();
            assert_eq!(many, serial, "source {s:?} under {faults}");
        }
    }
}

/// Counter proof of the batched fast path: a target set whose members are
/// all provably unaffected is answered entirely from the fault-free row —
/// zero BFS sweeps of any tier, zero repairs, and every target attributed
/// to the `batched_unaffected` tier.
#[test]
fn all_unaffected_target_sets_run_zero_sweeps() {
    let graph = Workload::new(WorkloadFamily::LayeredDeep, 40, SEED).generate();
    let mut engine = build_engine(&graph, repaired_options());
    let core = std::sync::Arc::clone(engine.core());
    let mut proven = 0usize;
    for faults in FaultScenario::TreeConcentrated
        .generate(&graph, VertexId(0), 2, 8, SEED)
        .iter()
        .filter(|f| !f.is_empty())
    {
        let targets: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| {
                core.is_target_unaffected(VertexId(0), v, faults)
                    .expect("in range")
            })
            .collect();
        if targets.len() < 2 {
            continue;
        }
        proven += 1;
        let before = engine.query_stats();
        let answers = engine
            .dist_many_after_faults(&targets, faults)
            .expect("in range");
        let after = engine.query_stats();
        let delta = after.delta_since(&before);
        assert_eq!(answers.len(), targets.len());
        assert_eq!(delta.queries, targets.len(), "one query per target");
        assert_eq!(
            delta.structure_bfs_runs, 0,
            "no sparse-H sweep under {faults}"
        );
        assert_eq!(
            delta.augmented_bfs_runs, 0,
            "no augmented sweep under {faults}"
        );
        assert_eq!(
            delta.full_graph_bfs_runs, 0,
            "no full-graph sweep under {faults}"
        );
        assert_eq!(delta.repaired_rows, 0, "no repair under {faults}");
        assert_eq!(
            delta.restricted_repairs, 0,
            "no restricted sweep under {faults}"
        );
        assert_eq!(
            delta.tiers.batched_unaffected,
            targets.len(),
            "every target batch-classified under {faults}"
        );
        // Cross-check the answers themselves against the fault-free row:
        // unaffected means the fault-free distance survives.
        for (&v, &d) in targets.iter().zip(&answers) {
            assert_eq!(d, engine.fault_free_dist(v).expect("in range"), "{v:?}");
        }
    }
    assert!(
        proven >= 3,
        "too few all-unaffected batches to prove anything"
    );
}

/// The restricted repair sweep is observable: a dense affected set probed
/// through a handful of targets books a `restricted_repairs` count and
/// still answers byte-identically.
#[test]
fn sparse_affected_targets_take_the_restricted_sweep() {
    let graph = Workload::new(WorkloadFamily::GridChords, 120, SEED).generate();
    let mut engine = build_engine(&graph, repaired_options());
    let mut reference = build_engine(&graph, repaired_options());
    let core = std::sync::Arc::clone(engine.core());
    let mut exercised = 0usize;
    for faults in FaultScenario::TreeConcentrated
        .generate(&graph, VertexId(0), 2, 12, SEED)
        .iter()
        .filter(|f| !f.is_empty())
    {
        let affected: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| {
                !core
                    .is_target_unaffected(VertexId(0), v, faults)
                    .expect("in range")
            })
            .collect();
        // One affected target amid a big affected set: the crossover
        // heuristic must choose the target-restricted sweep.
        if affected.len() < 16 {
            continue;
        }
        exercised += 1;
        let targets = vec![affected[affected.len() / 2]];
        let before = engine.query_stats();
        let many = engine
            .dist_many_after_faults(&targets, faults)
            .expect("in range");
        let delta = engine.query_stats().delta_since(&before);
        assert_eq!(
            delta.restricted_repairs, 1,
            "restricted sweep not taken under {faults}"
        );
        assert_eq!(delta.repaired_rows, 0, "full repair must not also run");
        let serial: Vec<Option<u32>> = targets
            .iter()
            .map(|&v| reference.dist_after_faults(v, faults).expect("in range"))
            .collect();
        assert_eq!(
            many, serial,
            "restricted sweep answer differs under {faults}"
        );
    }
    assert!(exercised >= 2, "no fault set produced a dense affected set");
}
