//! Differential test for persistent engine snapshots: an engine restored
//! from `write_snapshot` bytes must be indistinguishable from the freshly
//! built one — byte-identical snapshot re-serialization (save→load→save is
//! a fixed point) and answer-identical queries across every workload shape
//! the server exposes (single dist, path, batched dist, one-to-many), in
//! both the normal tiered regime and the forced-full-sweep regime.

use ftb_core::{EngineCore, EngineOptions, FaultQueryEngine, FaultSet};
use ftb_graph::{EdgeId, Fault, Graph, VertexId};
use ftb_server::{setup, EngineSpec};
use ftb_workloads::WorkloadFamily;
use std::sync::Arc;

fn spec(family: WorkloadFamily, n: usize, augment: bool) -> EngineSpec {
    EngineSpec {
        family,
        n,
        seed: 13,
        eps: 0.3,
        augment,
    }
}

/// Build the engine fresh, snapshot it, restore it, and assert the
/// restored engine re-serializes to the exact same bytes. Returns both
/// engines plus the graph for query minting.
fn build_and_restore(
    spec: &EngineSpec,
    options: EngineOptions,
) -> (Graph, Arc<EngineCore>, Arc<EngineCore>) {
    let graph = spec.graph();
    let built = spec
        .build_core(&graph, options.clone())
        .expect("fresh build succeeds");
    let note = setup::encode_spec(spec);
    let bytes = built.write_snapshot(&note);
    let (restored, restored_note) =
        EngineCore::read_snapshot(&bytes, options).expect("snapshot loads");
    assert_eq!(restored_note, note, "note round-trips verbatim");
    assert_eq!(
        setup::decode_spec(&restored_note).expect("note decodes"),
        *spec
    );
    assert_eq!(
        restored.write_snapshot(&restored_note),
        bytes,
        "save->load->save is byte-identical"
    );
    (graph, built, Arc::new(restored))
}

/// A deterministic spread of fault sets exercising every tier: single
/// structure edges, edges outside the structure, vertex faults and dual
/// failures (the latter two only answered without full-graph fallback
/// when the engine is augmented, but answers must match either way).
fn fault_sets(graph: &Graph, augmented: bool) -> Vec<FaultSet> {
    let m = graph.num_edges();
    let n = graph.num_vertices();
    let mut sets = vec![FaultSet::new()];
    for i in 0..6usize {
        sets.push(FaultSet::from(EdgeId(((i * m) / 7) as u32)));
    }
    if augmented {
        for i in 1..4usize {
            let mut s = FaultSet::new();
            s.insert(Fault::Vertex(VertexId(((i * n) / 5) as u32)));
            sets.push(s);
        }
        let mut dual = FaultSet::new();
        dual.insert(Fault::Edge(EdgeId(0)));
        dual.insert(Fault::Edge(EdgeId((m / 2) as u32)));
        sets.push(dual);
    }
    sets
}

/// Fibonacci-hash spread of targets over the vertex space (the loadgen's
/// target-minting recipe).
fn targets(n: usize, count: usize) -> Vec<VertexId> {
    (0..count)
        .map(|i| VertexId(((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as u32))
        .collect()
}

/// Drive both engines through identical workloads and assert every answer
/// matches. Fresh contexts per engine; the built engine is the oracle.
fn assert_answer_identical(graph: &Graph, built: &Arc<EngineCore>, restored: &Arc<EngineCore>) {
    let source = built.primary_source();
    assert_eq!(restored.primary_source(), source);
    let augmented = built.augment_coverage() != ftb_core::AugmentCoverage::Off;
    assert_eq!(restored.augment_coverage(), built.augment_coverage());
    let sets = fault_sets(graph, augmented);
    let ts = targets(graph.num_vertices(), 24);

    let mut ctx_a = built.new_context();
    let mut ctx_b = restored.new_context();
    for faults in &sets {
        // Single-target distances and paths.
        for &t in &ts[..8] {
            let da = ctx_a.dist_after_faults_from(built, source, t, faults);
            let db = ctx_b.dist_after_faults_from(restored, source, t, faults);
            assert_eq!(da.unwrap(), db.unwrap(), "dist {faults:?} -> {t:?}");
            let pa = ctx_a.path_after_faults_from(built, source, t, faults);
            let pb = ctx_b.path_after_faults_from(restored, source, t, faults);
            assert_eq!(pa.unwrap(), pb.unwrap(), "path {faults:?} -> {t:?}");
        }
        // One-to-many: single classification + at most one repair sweep.
        let ma = ctx_a.dist_many_after_faults_from(built, source, &ts, faults);
        let mb = ctx_b.dist_many_after_faults_from(restored, source, &ts, faults);
        assert_eq!(ma.unwrap(), mb.unwrap(), "dist_many {faults:?}");
    }

    // Batched mixed-fault queries through the facade (grouped + sharded).
    let batch: Vec<(VertexId, FaultSet)> = ts
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, sets[i % sets.len()].clone()))
        .collect();
    let mut eng_a = FaultQueryEngine::from_core(graph, Arc::clone(built)).expect("facade on built");
    let mut eng_b =
        FaultQueryEngine::from_core(graph, Arc::clone(restored)).expect("facade on restored");
    assert_eq!(
        eng_a.query_many_faults(&batch).unwrap(),
        eng_b.query_many_faults(&batch).unwrap(),
        "batched answers"
    );
}

fn run_family(family: WorkloadFamily, n: usize, augment: bool) {
    let spec = spec(family, n, augment);
    // Normal tiered answering.
    let (graph, built, restored) = build_and_restore(&spec, EngineOptions::new());
    assert_answer_identical(&graph, &built, &restored);
    // Forced full sweeps: the repair-free reference regime must agree too
    // (the option is per-engine, not ambient, so no env-var races here).
    let opts = EngineOptions::new().with_force_full_sweep(true);
    let (graph, built, restored) = build_and_restore(&spec, opts);
    assert_answer_identical(&graph, &built, &restored);
}

#[test]
fn erdos_renyi_snapshot_is_answer_identical() {
    run_family(WorkloadFamily::ErdosRenyi, 260, false);
}

#[test]
fn erdos_renyi_augmented_snapshot_is_answer_identical() {
    run_family(WorkloadFamily::ErdosRenyi, 220, true);
}

#[test]
fn grid_chords_augmented_snapshot_is_answer_identical() {
    run_family(WorkloadFamily::GridChords, 225, true);
}

#[test]
fn layered_snapshot_is_answer_identical() {
    run_family(WorkloadFamily::LayeredShallow, 300, false);
}

#[test]
fn snapshot_rejects_the_wrong_graph_spec() {
    // A snapshot of one spec decodes fine, but the embedded spec names the
    // graph it was built from — the serve-side cross-check path.
    let a = spec(WorkloadFamily::ErdosRenyi, 200, false);
    let graph = a.graph();
    let core = a.build_core(&graph, EngineOptions::new()).expect("build");
    let bytes = core.write_snapshot(&setup::encode_spec(&a));
    let (_, note) = EngineCore::read_snapshot(&bytes, EngineOptions::new()).expect("loads");
    let embedded = setup::decode_spec(&note).expect("decodes");
    let b = spec(WorkloadFamily::ErdosRenyi, 201, false);
    assert_eq!(embedded, a);
    assert_ne!(embedded, b);
    assert_ne!(
        a.graph().fingerprint(),
        b.graph().fingerprint(),
        "different specs generate different graphs"
    );
}

/// A crash between writing the `.tmp` sibling and renaming it into place
/// is the snapshot pipeline's one dangerous window. Simulate every
/// variant of it and assert the load path never trusts the wreckage.
#[test]
fn crash_mid_write_never_shadows_a_good_snapshot() {
    let spec = spec(WorkloadFamily::ErdosRenyi, 150, false);
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new())
        .expect("build");

    let dir = std::env::temp_dir().join(format!("ftbfs-crash-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("engine.ftbsnap");
    let tmp = path.with_extension("tmp");

    // A good snapshot lands; its tmp sibling is renamed away.
    setup::save_snapshot(&path, &core, &spec).expect("first save");
    assert!(
        path.exists() && !tmp.exists(),
        "rename consumed the tmp file"
    );
    let (restored, restored_spec) =
        setup::load_snapshot(&path, EngineOptions::new()).expect("good snapshot loads");
    assert_eq!(restored_spec, spec);
    assert_eq!(restored.graph().fingerprint(), graph.fingerprint());

    // Crash simulation: a later save dies mid-write, leaving a truncated
    // tmp. The final name still holds the *old* good bytes — loading must
    // keep working and must not look at the tmp.
    let good_bytes = std::fs::read(&path).expect("read good snapshot");
    std::fs::write(&tmp, &good_bytes[..good_bytes.len() / 2]).expect("plant stale tmp");
    let (after_crash, _) = setup::load_snapshot(&path, EngineOptions::new())
        .expect("stale tmp must not break loading the good snapshot");
    assert_eq!(after_crash.graph().fingerprint(), graph.fingerprint());

    // The stale tmp itself is detected if someone loads it directly: a
    // truncated snapshot fails the checksum, it does not half-load.
    assert!(
        matches!(
            setup::load_snapshot(&tmp, EngineOptions::new()),
            Err(setup::SnapshotLoadError::Decode(_))
        ),
        "a truncated snapshot must be rejected by decode"
    );

    // Re-saving overwrites the stale tmp and renames it away again: the
    // crash leaves nothing permanent behind.
    setup::save_snapshot(&path, &core, &spec).expect("re-save after crash");
    assert!(
        path.exists() && !tmp.exists(),
        "re-save cleaned the stale tmp"
    );
    let (after_resave, _) =
        setup::load_snapshot(&path, EngineOptions::new()).expect("re-saved snapshot loads");
    assert_eq!(after_resave.graph().fingerprint(), graph.fingerprint());

    std::fs::remove_dir_all(&dir).ok();
}

/// The inverse wreckage: the crash happened on the *first* ever save, so
/// only a tmp exists and there is no good snapshot to fall back to. The
/// load must fail with a clean `Io(NotFound)` — not invent an engine.
#[test]
fn tmp_only_wreckage_is_a_clean_not_found() {
    let spec = spec(WorkloadFamily::ErdosRenyi, 150, false);
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new())
        .expect("build");

    let dir = std::env::temp_dir().join(format!("ftbfs-crash-test2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("engine.ftbsnap");
    let tmp = path.with_extension("tmp");

    std::fs::write(&tmp, b"truncated first save").expect("plant orphan tmp");
    match setup::load_snapshot(&path, EngineOptions::new()) {
        Err(setup::SnapshotLoadError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
        }
        other => panic!("expected Io(NotFound), got {other:?}"),
    }

    // A successful save recovers the directory completely.
    setup::save_snapshot(&path, &core, &spec).expect("save succeeds");
    assert!(path.exists() && !tmp.exists());
    setup::load_snapshot(&path, EngineOptions::new()).expect("recovered snapshot loads");

    std::fs::remove_dir_all(&dir).ok();
}
