//! Round-trip tests of the redesigned public API: every [`StructureBuilder`]
//! implementation over several generator families, the definition-level
//! verifier, the [`FaultQueryEngine`] cross-checked against from-scratch BFS
//! on small graphs, and the typed error paths.

use ftbfs::graph::{enumerate_fault_sets, generators, EdgeId, Graph, SubgraphView, VertexId};
use ftbfs::par::ParallelConfig;
use ftbfs::sp::{bfs_distances_view, ShortestPathTree, TieBreakWeights, UNREACHABLE};
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{
    build_structure, dist_after_faults_brute, verify_structure, BaselineBuilder, BuildConfig,
    BuildPlan, EngineCore, EngineOptions, FaultQueryEngine, FaultSet, FtbfsError,
    MultiSourceBuilder, MultiSourceEngine, ReinforcedTreeBuilder, Sources, StructureBuilder,
    TradeoffBuilder,
};
use std::sync::Arc;

const SEED: u64 = 0xA11CE;

fn all_builders() -> Vec<Box<dyn StructureBuilder>> {
    vec![
        Box::new(TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(SEED))),
        Box::new(BaselineBuilder::new().with_config(|c| c.with_seed(SEED))),
        Box::new(ReinforcedTreeBuilder::new().with_config(|c| c.with_seed(SEED))),
        Box::new(MultiSourceBuilder::new(0.3).with_config(|c| c.with_seed(SEED))),
    ]
}

/// A cross-section of generator families for the round trip: deterministic
/// generators plus seeded random workloads.
fn test_graphs(target_n: usize) -> Vec<(String, Graph)> {
    let mut graphs = vec![
        ("hypercube".to_string(), generators::hypercube(4)),
        ("grid".to_string(), generators::grid(5, 6)),
        (
            "clique_with_pendant".to_string(),
            generators::clique_with_pendant(18),
        ),
    ];
    for family in [
        WorkloadFamily::ErdosRenyi,
        WorkloadFamily::LayeredShallow,
        WorkloadFamily::PreferentialAttachment,
    ] {
        let w = Workload::new(family, target_n, SEED);
        graphs.push((w.label(), w.generate()));
    }
    graphs
}

#[test]
fn every_builder_verifies_across_generator_families() {
    for (name, graph) in test_graphs(80) {
        let sources = Sources::single(VertexId(0));
        for builder in all_builders() {
            let s = builder
                .build(&graph, &sources)
                .unwrap_or_else(|e| panic!("{}: builder {} failed: {e}", name, builder.name()));
            assert_eq!(
                s.num_backup() + s.num_reinforced(),
                s.num_edges(),
                "{name}/{}: edge accounting broken",
                builder.name()
            );
            let weights = TieBreakWeights::generate(&graph, SEED);
            let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
            let report = verify_structure(&graph, &tree, &s, &ParallelConfig::serial(), false);
            assert!(
                report.is_valid(),
                "{name}/{}: {} violations over {} checked edges",
                builder.name(),
                report.violations.len(),
                report.checked_edges
            );
        }
    }
}

#[test]
fn build_plans_match_their_builders() {
    let graph = generators::grid(4, 5);
    let sources = Sources::single(VertexId(0));
    let config = BuildConfig::new(0.0).with_seed(SEED).serial();
    for (plan, builder) in [
        (
            BuildPlan::Tradeoff { eps: 0.3 },
            Box::new(TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(SEED).serial()))
                as Box<dyn StructureBuilder>,
        ),
        (
            BuildPlan::Baseline,
            Box::new(BaselineBuilder::new().with_config(|c| c.with_seed(SEED).serial())),
        ),
        (
            BuildPlan::ReinforcedTree,
            Box::new(ReinforcedTreeBuilder::new().with_config(|c| c.with_seed(SEED).serial())),
        ),
    ] {
        let via_plan = build_structure(&graph, &sources, plan, &config).expect("valid input");
        let via_builder = builder.build(&graph, &sources).expect("valid input");
        assert_eq!(via_plan.num_edges(), via_builder.num_edges(), "{plan:?}");
        assert_eq!(
            via_plan.num_reinforced(),
            via_builder.num_reinforced(),
            "{plan:?}"
        );
    }
}

/// Acceptance criterion: `dist_after_fault(v, e)` agrees with a from-scratch
/// BFS on `G \ {e}` for **all** `(v, e)` pairs on small graphs (n ≤ 64)
/// across several workload families.
#[test]
fn engine_agrees_with_brute_force_on_all_pairs() {
    let small_graphs: Vec<(String, Graph)> = vec![
        ("hypercube".into(), generators::hypercube(4)), // n = 16
        ("grid".into(), generators::grid(5, 5)),        // n = 25
        (
            "clique_with_pendant".into(),
            generators::clique_with_pendant(12),
        ),
        (
            Workload::new(WorkloadFamily::ErdosRenyi, 40, SEED).label(),
            Workload::new(WorkloadFamily::ErdosRenyi, 40, SEED).generate(),
        ),
        (
            Workload::new(WorkloadFamily::LayeredShallow, 48, SEED).label(),
            Workload::new(WorkloadFamily::LayeredShallow, 48, SEED).generate(),
        ),
        (
            Workload::new(WorkloadFamily::GridChords, 36, SEED).label(),
            Workload::new(WorkloadFamily::GridChords, 36, SEED).generate(),
        ),
    ];
    for (name, graph) in small_graphs {
        assert!(graph.num_vertices() <= 64, "{name} exceeds the n<=64 bound");
        for eps in [0.0, 0.3, 1.0] {
            let structure = TradeoffBuilder::new(eps)
                .with_config(|c| c.with_seed(SEED).serial())
                .build(&graph, &Sources::single(VertexId(0)))
                .expect("valid input");
            let mut engine =
                FaultQueryEngine::new(&graph, structure).expect("structure matches graph");
            for e in graph.edge_ids() {
                for v in graph.vertices() {
                    let got = engine.dist_after_fault(v, e).expect("in range");
                    let view = SubgraphView::full(&graph).without_edge(e);
                    let brute = bfs_distances_view(&view, VertexId(0))[v.index()];
                    let want = (brute != UNREACHABLE).then_some(brute);
                    assert_eq!(
                        got, want,
                        "{name} (eps={eps}): dist(s, {v:?}, G\\{{{e:?}}}) mismatch"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_batches_and_paths_are_consistent() {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 50, SEED).generate();
    let structure = TradeoffBuilder::new(0.25)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let mut engine = FaultQueryEngine::new(&graph, structure).expect("matching graph");
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let batched = engine.query_many(&queries).expect("in range");
    for (i, &(v, e)) in queries.iter().enumerate() {
        assert_eq!(
            batched[i],
            engine.dist_after_fault(v, e).expect("in range"),
            "batched vs single mismatch at ({v:?}, {e:?})"
        );
        if let Some(d) = batched[i] {
            let p = engine
                .path_after_fault(v, e)
                .expect("in range")
                .expect("reachable vertices have witness paths");
            assert_eq!(p.len() as u32, d);
            assert!(!p.contains_edge(e));
        }
    }
}

/// Acceptance criterion: parallel `query_many` (2+ worker threads, multi-row
/// LRU enabled) agrees with brute-force BFS **and** with the serial path on
/// all `(v, e)` pairs of several generated graphs.
#[test]
fn parallel_query_many_agrees_with_brute_force_and_serial() {
    let graphs: Vec<(String, Graph)> = vec![
        ("hypercube".into(), generators::hypercube(4)),
        ("grid".into(), generators::grid(5, 5)),
        (
            Workload::new(WorkloadFamily::ErdosRenyi, 40, SEED).label(),
            Workload::new(WorkloadFamily::ErdosRenyi, 40, SEED).generate(),
        ),
        (
            Workload::new(WorkloadFamily::GridChords, 36, SEED).label(),
            Workload::new(WorkloadFamily::GridChords, 36, SEED).generate(),
        ),
    ];
    for (name, graph) in graphs {
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("valid input");
        let queries: Vec<(VertexId, EdgeId)> = graph
            .edge_ids()
            .flat_map(|e| graph.vertices().map(move |v| (v, e)))
            .collect();

        let mut serial = FaultQueryEngine::with_options(
            &graph,
            structure.clone(),
            EngineOptions::new().with_lru_rows(4).serial(),
        )
        .expect("matching graph");
        let serial_answers = serial.query_many(&queries).expect("in range");

        for threads in [2usize, 4] {
            let mut sharded = FaultQueryEngine::with_options(
                &graph,
                structure.clone(),
                EngineOptions::new()
                    .with_lru_rows(4)
                    .with_parallel(ParallelConfig::with_threads(threads)),
            )
            .expect("matching graph");
            let answers = sharded.query_many(&queries).expect("in range");
            assert_eq!(
                answers, serial_answers,
                "{name}: {threads}-thread batch diverged from serial"
            );
        }
        for (i, &(v, e)) in queries.iter().enumerate() {
            let view = SubgraphView::full(&graph).without_edge(e);
            let brute = bfs_distances_view(&view, VertexId(0))[v.index()];
            let want = (brute != UNREACHABLE).then_some(brute);
            assert_eq!(
                serial_answers[i], want,
                "{name}: dist(s, {v:?}, G\\{{{e:?}}}) mismatch"
            );
        }
    }
}

/// Acceptance criterion: two contexts created by `EngineCore::new_context`
/// serve queries concurrently from one `Arc<EngineCore>` on real threads.
#[test]
fn two_contexts_serve_concurrently_from_one_shared_core() {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 60, SEED).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let core = Arc::new(EngineCore::build(&graph, structure).expect("matching graph"));

    // Expected answers from a plain serial context.
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let expected: Vec<Option<u32>> = {
        let mut ctx = core.new_context();
        ctx.query_many(&core, &queries).expect("in range")
    };

    // Two real threads, one context each, interleaved access patterns: the
    // core is shared immutably, the contexts never touch each other.
    let forward = {
        let core = Arc::clone(&core);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut ctx = core.new_context();
            queries
                .iter()
                .map(|&(v, e)| ctx.dist_after_fault(&core, v, e).expect("in range"))
                .collect::<Vec<_>>()
        })
    };
    let backward = {
        let core = Arc::clone(&core);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut ctx = core.new_context();
            let mut answers: Vec<Option<u32>> = queries
                .iter()
                .rev()
                .map(|&(v, e)| ctx.dist_after_fault(&core, v, e).expect("in range"))
                .collect();
            answers.reverse();
            answers
        })
    };
    assert_eq!(forward.join().expect("forward worker panicked"), expected);
    assert_eq!(backward.join().expect("backward worker panicked"), expected);
}

#[test]
fn multi_source_engine_serves_each_source_exactly() {
    let graph = Workload::new(WorkloadFamily::LayeredShallow, 48, SEED).generate();
    let sources = vec![VertexId(0), VertexId(10), VertexId(20)];
    let mbfs = MultiSourceBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build_multi(&graph, &Sources::multi(sources.clone()))
        .expect("valid input");
    let mut engine = MultiSourceEngine::with_options(
        &graph,
        mbfs,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(2)),
    )
    .expect("matching graph");
    assert_eq!(engine.sources(), sources.as_slice());
    let mut queries = Vec::new();
    for &s in &sources {
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                queries.push((s, v, e));
            }
        }
    }
    let batch = engine.query_many(&queries).expect("in range");
    for (i, &(s, v, e)) in queries.iter().enumerate() {
        let view = SubgraphView::full(&graph).without_edge(e);
        let brute = bfs_distances_view(&view, s)[v.index()];
        let want = (brute != UNREACHABLE).then_some(brute);
        assert_eq!(batch[i], want, "source {s:?}, vertex {v:?}, edge {e:?}");
    }
    assert!(matches!(
        engine.dist_after_fault(VertexId(1), VertexId(0), EdgeId(0)),
        Err(FtbfsError::SourceNotServed { .. })
    ));
}

/// Acceptance criterion: single-edge queries through the old API return
/// byte-identical results to pre-refactor behaviour — which was exactly
/// brute-force BFS on `G ∖ {e}` (asserted above in
/// `engine_agrees_with_brute_force_on_all_pairs`) — and the singleton
/// fault-set API is the same code path: same answers, same work counters.
#[test]
fn old_single_edge_api_is_byte_identical_to_singleton_fault_sets() {
    for family in [WorkloadFamily::ErdosRenyi, WorkloadFamily::GridChords] {
        let w = Workload::new(family, 40, SEED);
        let graph = w.generate();
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("valid input");
        let mut old = FaultQueryEngine::new(&graph, structure.clone()).expect("matching graph");
        let mut new = FaultQueryEngine::new(&graph, structure).expect("matching graph");
        for e in graph.edge_ids() {
            let singleton = FaultSet::from(e);
            for v in graph.vertices() {
                assert_eq!(
                    old.dist_after_fault(v, e).expect("in range"),
                    new.dist_after_faults(v, &singleton).expect("in range"),
                    "{}: ({v:?}, {e:?})",
                    w.label()
                );
            }
        }
        assert_eq!(
            old.query_stats(),
            new.query_stats(),
            "{}: the two APIs must do identical work",
            w.label()
        );
        // Batches too: (v, e) pairs and their singleton-set twins.
        let queries: Vec<(VertexId, EdgeId)> = graph
            .edge_ids()
            .flat_map(|e| graph.vertices().map(move |v| (v, e)))
            .collect();
        let set_queries: Vec<(VertexId, FaultSet)> = queries
            .iter()
            .map(|&(v, e)| (v, FaultSet::from(e)))
            .collect();
        assert_eq!(
            old.query_many(&queries).expect("in range"),
            new.query_many_faults(&set_queries).expect("in range"),
            "{}: batched single-edge vs singleton-set mismatch",
            w.label()
        );
    }
}

/// Acceptance criterion: `dist_after_faults` / `path_after_faults` match
/// brute-force BFS-with-faults on every fault set of size ≤ 2, for the
/// single-source engine, serial and sharded. (The multi-source twin and the
/// per-scenario suite live in `tests/multi_fault.rs`.)
#[test]
fn fault_set_queries_match_brute_force_on_all_sets_up_to_two() {
    let w = Workload::new(WorkloadFamily::LayeredShallow, 30, SEED);
    let graph = w.generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let sets = enumerate_fault_sets(&graph, 2);
    let mut serial =
        FaultQueryEngine::with_options(&graph, structure.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let mut sharded = FaultQueryEngine::with_options(
        &graph,
        structure,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    let queries: Vec<(VertexId, FaultSet)> = sets
        .iter()
        .flat_map(|fs| graph.vertices().map(move |v| (v, fs.clone())))
        .collect();
    let serial_answers = serial.query_many_faults(&queries).expect("in range");
    let sharded_answers = sharded.query_many_faults(&queries).expect("in range");
    assert_eq!(serial_answers, sharded_answers, "sharded diverged");
    for (i, (v, fs)) in queries.iter().enumerate() {
        let brute = dist_after_faults_brute(&graph, VertexId(0), fs)[v.index()];
        let want = (brute != UNREACHABLE).then_some(brute);
        assert_eq!(serial_answers[i], want, "{}: {v:?} under {fs}", w.label());
        if let Some(d) = want {
            let p = serial
                .path_after_faults(*v, fs)
                .expect("in range")
                .expect("reachable vertices have witness paths");
            assert_eq!(p.len() as u32, d);
            for e in fs.edges() {
                assert!(!p.contains_edge(e));
            }
            for fv in fs.vertices() {
                assert!(!p.vertices().contains(&fv));
            }
        }
    }
}

#[test]
fn fault_set_error_paths_are_typed_through_the_facade() {
    let graph = generators::grid(4, 4);
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    // Default cap is 2; a 3-set is rejected, and the cap is configurable.
    let three: FaultSet = (0..3).map(|i| ftbfs::Fault::Edge(EdgeId(i))).collect();
    let mut engine = FaultQueryEngine::new(&graph, structure.clone()).expect("matching graph");
    assert_eq!(
        engine.dist_after_faults(VertexId(1), &three),
        Err(FtbfsError::FaultSetTooLarge { got: 3, max: 2 })
    );
    let mut wide = FaultQueryEngine::with_options(
        &graph,
        structure,
        EngineOptions::from_build_config(&BuildConfig::new(0.3).with_max_faults(3).serial()),
    )
    .expect("matching graph");
    assert!(wide.dist_after_faults(VertexId(1), &three).is_ok());
    assert!(matches!(
        wide.dist_after_faults(VertexId(1), &FaultSet::single_vertex(VertexId(99))),
        Err(FtbfsError::InvalidFault { .. })
    ));
}

#[test]
fn invalid_eps_is_a_typed_error_not_a_panic() {
    let graph = generators::grid(4, 4);
    let sources = Sources::single(VertexId(0));
    for eps in [-0.5, 1.5, f64::NAN, f64::INFINITY] {
        let err = TradeoffBuilder::new(eps)
            .build(&graph, &sources)
            .expect_err("bad eps must be rejected");
        assert!(
            matches!(err, FtbfsError::InvalidEps { .. }),
            "eps={eps} produced {err:?}"
        );
    }
}

#[test]
fn bad_sources_are_typed_errors() {
    let graph = generators::grid(4, 4);
    let out_of_range = TradeoffBuilder::new(0.3)
        .build(&graph, &Sources::single(VertexId(1000)))
        .expect_err("out-of-range source must be rejected");
    assert!(matches!(
        out_of_range,
        FtbfsError::SourceOutOfRange {
            source: VertexId(1000),
            ..
        }
    ));

    let empty = MultiSourceBuilder::new(0.3)
        .build(&graph, &Sources::multi(Vec::new()))
        .expect_err("empty source set must be rejected");
    assert_eq!(empty, FtbfsError::EmptySources);

    let multi_bad = MultiSourceBuilder::new(0.3)
        .build_multi(&graph, &Sources::multi(vec![VertexId(0), VertexId(77)]))
        .expect_err("any out-of-range source must be rejected");
    assert!(matches!(multi_bad, FtbfsError::SourceOutOfRange { .. }));
}

#[test]
fn disconnected_source_is_reported_when_required() {
    // Two disjoint 4-cycles.
    let mut b = ftbfs::graph::GraphBuilder::new(8);
    for (x, y) in [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
    ] {
        b.add_edge(VertexId(x), VertexId(y));
    }
    let graph = b.build();
    let strict = TradeoffBuilder::new(0.3).with_config(|c| c.with_require_connected(true));
    let err = strict
        .build(&graph, &Sources::single(VertexId(0)))
        .expect_err("strict mode must reject the disconnected input");
    assert_eq!(
        err,
        FtbfsError::DisconnectedSource {
            source: VertexId(0),
            num_unreachable: 4
        }
    );
    // Lenient mode still builds (the unreachable half simply stays out).
    let lenient = TradeoffBuilder::new(0.3);
    assert!(lenient.build(&graph, &Sources::single(VertexId(0))).is_ok());
}

#[test]
fn degenerate_budget_overrides_are_typed_errors() {
    let graph = generators::grid(4, 4);
    let err = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_budget_override(Some(0)))
        .build(&graph, &Sources::single(VertexId(0)))
        .expect_err("zero budget must be rejected");
    assert!(matches!(err, FtbfsError::BudgetOverflow { .. }));

    let err = TradeoffBuilder::new(0.3)
        .with_config(|c| {
            c.with_k_override(Some(usize::MAX))
                .with_budget_override(Some(usize::MAX))
        })
        .build(&graph, &Sources::single(VertexId(0)))
        .expect_err("overflowing work envelope must be rejected");
    assert!(matches!(err, FtbfsError::BudgetOverflow { .. }));
}

#[test]
fn engine_rejects_foreign_structures_and_bad_queries() {
    let g1 = generators::grid(3, 4);
    let g2 = generators::hypercube(4);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.serial())
        .build(&g1, &Sources::single(VertexId(0)))
        .expect("valid input");
    assert!(matches!(
        FaultQueryEngine::new(&g2, s.clone()),
        Err(FtbfsError::StructureMismatch { .. })
    ));

    let mut engine = FaultQueryEngine::new(&g1, s).expect("matching graph");
    assert!(matches!(
        engine.dist_after_fault(VertexId(500), EdgeId(0)),
        Err(FtbfsError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        engine.dist_after_fault(VertexId(0), EdgeId(500)),
        Err(FtbfsError::EdgeOutOfRange { .. })
    ));
}

#[test]
fn error_messages_are_human_readable() {
    let graph = generators::grid(3, 3);
    let err = TradeoffBuilder::new(7.0)
        .build(&graph, &Sources::single(VertexId(0)))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('7'), "message should name the value: {msg}");
    let err: Box<dyn std::error::Error> = Box::new(err);
    assert!(!err.to_string().is_empty());
}
