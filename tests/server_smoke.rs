//! End-to-end smoke test of the TCP query service: concurrent clients on
//! an ephemeral loopback port receive answers **byte-identical** to what a
//! direct in-process engine produces, and a tiny queue bound makes the
//! admission control's `Overloaded` reply observable.

use ftb_core::EngineOptions;
use ftb_graph::{FaultSet, VertexId};
use ftb_server::protocol::{encode_response, Request, Response};
use ftb_server::{wait_until_ready, Client, EngineSpec, ServeOptions, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spec() -> EngineSpec {
    EngineSpec {
        n: 200,
        seed: 13,
        ..EngineSpec::default()
    }
}

#[test]
fn wire_answers_are_byte_identical_to_in_process_answers() {
    let spec = spec();
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new().serial())
        .expect("spec builds");
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&core),
        ServeOptions {
            workers: 2,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();
    assert!(
        wait_until_ready(addr, Duration::from_secs(5)),
        "server should accept connections shortly after bind"
    );
    let source = spec.source();

    // The query mix: plain distances, faulted distances, and paths, over a
    // deterministic spread of targets and fault sets.
    let fault_sets: Vec<FaultSet> = {
        let mut sets =
            ftb_workloads::FaultScenario::RandomEdges.generate(&graph, source, 1, 16, spec.seed);
        sets.push(FaultSet::new());
        sets
    };
    let queries: Vec<(VertexId, FaultSet)> = (0..120usize)
        .map(|i| {
            let v = VertexId((i * 17 % graph.num_vertices()) as u32);
            (v, fault_sets[i % fault_sets.len()].clone())
        })
        .collect();

    // Expected answers straight from the engine, through the same shared
    // core the server owns.
    let mut ctx = core.new_context();
    let expected: Vec<(Response, Response)> = queries
        .iter()
        .map(|(v, faults)| {
            let dist = ctx
                .dist_after_faults_from(&core, source, *v, faults)
                .expect("valid query");
            let path = ctx
                .path_after_faults_from(&core, source, *v, faults)
                .expect("valid query");
            (
                Response::Dist(dist),
                Response::Path(path.map(|p| ftb_server::WirePath {
                    vertices: p.vertices().to_vec(),
                    edges: p.edges().to_vec(),
                })),
            )
        })
        .collect();

    // Four concurrent clients each replay the full mix and compare the
    // *encoded bytes* of every answer against the in-process reference.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for ((v, faults), (want_dist, want_path)) in queries.iter().zip(expected) {
                    let got = client
                        .request(&Request::Dist {
                            source,
                            target: *v,
                            faults: faults.clone(),
                        })
                        .expect("dist io");
                    assert_eq!(
                        encode_response(&got),
                        encode_response(want_dist),
                        "distance answer bytes diverged at {v:?} / {faults:?}"
                    );
                    let got = client
                        .request(&Request::Path {
                            source,
                            target: *v,
                            faults: faults.clone(),
                        })
                        .expect("path io");
                    assert_eq!(
                        encode_response(&got),
                        encode_response(want_path),
                        "path answer bytes diverged at {v:?} / {faults:?}"
                    );
                }
                // The batched op agrees with the per-query answers too.
                let got = client
                    .request(&Request::BatchDist {
                        source,
                        queries: queries.clone(),
                    })
                    .expect("batch io");
                let want = Response::BatchDist(
                    expected
                        .iter()
                        .map(|(d, _)| match d {
                            Response::Dist(d) => *d,
                            other => panic!("non-dist expected entry {other:?}"),
                        })
                        .collect(),
                );
                assert_eq!(encode_response(&got), encode_response(&want));
            });
        }
    });

    // The fingerprint in the handshake names the same graph.
    let mut probe = Client::connect(addr).expect("probe");
    assert_eq!(probe.info().fingerprint, graph.fingerprint());
    let stats = probe.stats().expect("stats");
    assert!(stats.queries > 0, "workers published per-tier counters");
    assert_eq!(
        stats.queries,
        stats.tier_fault_free_row
            + stats.tier_unaffected_fast_path
            + stats.tier_batched_unaffected
            + stats.tier_sparse_h_bfs
            + stats.tier_augmented_bfs
            + stats.tier_full_graph_bfs,
        "tier counters account for every query"
    );
    assert_eq!(stats.shed, 0, "an uncontended run sheds nothing");

    probe.shutdown().expect("graceful shutdown");
    server.join().expect("clean join");
}

#[test]
fn tiny_queue_bound_sheds_with_overloaded() {
    let spec = spec();
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new().serial())
        .expect("spec builds");
    // One worker, a one-slot queue: concurrent clients must collide.
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&core),
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            idle_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();
    assert!(
        wait_until_ready(addr, Duration::from_secs(5)),
        "server should accept connections shortly after bind"
    );
    let source = spec.source();

    let sheds = AtomicU64::new(0);
    let oks = AtomicU64::new(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let sheds = &sheds;
            let oks = &oks;
            let graph = &graph;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let n = graph.num_vertices() as u32;
                let mut i = t;
                // Hammer distinct fault sets (each a cache-missing BFS for
                // the single worker) until somebody observes a shed.
                while sheds.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
                    let e = ftb_graph::EdgeId(i % graph.num_edges() as u32);
                    let resp = client
                        .dist(source, VertexId(i % n), FaultSet::from(e))
                        .expect("io");
                    match resp {
                        Response::Overloaded => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Dist(_) => {
                            oks.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                    i += 8;
                }
            });
        }
    });
    assert!(
        sheds.load(Ordering::Relaxed) > 0,
        "8 clients against a 1-slot queue never observed Overloaded \
         ({} successes)",
        oks.load(Ordering::Relaxed)
    );
    assert!(oks.load(Ordering::Relaxed) > 0, "some requests succeeded");
    let report = server.stats();
    assert_eq!(
        report.shed,
        sheds.load(Ordering::Relaxed),
        "shed counter matches"
    );

    server.shutdown();
    server.join().expect("clean join");
}
