//! The multi-fault workload suite: every [`FaultScenario`] family over
//! small instances of every [`WorkloadFamily`], cross-checked against
//! brute-force BFS, serial and sharded, single- and multi-source.
//!
//! CI runs this file as a dedicated step with `FTBFS_FORCE_THREADS=4` so
//! the sharded fault-group path (including oversized-group splitting) is
//! exercised even on small runners.

use ftbfs::graph::{enumerate_fault_sets, FaultSet, VertexId};
use ftbfs::par::ParallelConfig;
use ftbfs::sp::UNREACHABLE;
use ftbfs::workloads::{FaultScenario, Workload, WorkloadFamily};
use ftbfs::{
    cross_check_fault_sets, dist_after_faults_brute, EngineCore, EngineOptions, FaultQueryEngine,
    MultiSourceBuilder, MultiSourceEngine, Sources, StructureBuilder, TradeoffBuilder,
};

const SEED: u64 = 0xFA17;

fn small_workloads(target_n: usize) -> Vec<(String, ftbfs::graph::Graph)> {
    WorkloadFamily::all()
        .iter()
        .map(|&family| {
            let w = Workload::new(family, target_n, SEED);
            (w.label(), w.generate())
        })
        .collect()
}

fn brute(graph: &ftbfs::graph::Graph, s: VertexId, v: VertexId, faults: &FaultSet) -> Option<u32> {
    let d = dist_after_faults_brute(graph, s, faults)[v.index()];
    (d != UNREACHABLE).then_some(d)
}

/// Acceptance criterion: `dist_after_faults` matches brute-force BFS on
/// **every** fault set of size ≤ 2 over the workload suite's small graphs.
#[test]
fn every_workload_family_is_exact_on_all_fault_sets_up_to_two() {
    for (name, graph) in small_workloads(28) {
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let core = EngineCore::build(&graph, structure).expect("matching graph");
        let sets = enumerate_fault_sets(&graph, 2);
        let mismatches = cross_check_fault_sets(&core, &sets, &ParallelConfig::default())
            .expect("enumerated sets are valid");
        assert!(
            mismatches.is_empty(),
            "{name}: {} of {} fault sets diverged; first: {:?}",
            mismatches.len(),
            sets.len(),
            mismatches.first()
        );
    }
}

/// Every scenario family, f ∈ {1, 2}: batches answer exactly, serial and
/// sharded paths byte-identical.
#[test]
fn scenario_batches_are_exact_and_shard_deterministically() {
    for (name, graph) in small_workloads(48) {
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        for &scenario in FaultScenario::all() {
            for f in [1usize, 2] {
                let fault_sets = scenario.generate(&graph, VertexId(0), f, 12, SEED);
                let queries: Vec<(VertexId, FaultSet)> = fault_sets
                    .iter()
                    .flat_map(|fs| graph.vertices().map(move |v| (v, fs.clone())))
                    .collect();
                let mut serial = FaultQueryEngine::with_options(
                    &graph,
                    structure.clone(),
                    EngineOptions::new().serial(),
                )
                .expect("matching graph");
                let expected = serial.query_many_faults(&queries).expect("in range");
                for (i, (v, fs)) in queries.iter().enumerate() {
                    assert_eq!(
                        expected[i],
                        brute(&graph, VertexId(0), *v, fs),
                        "{name}/{}: f={f}, vertex {v:?}, faults {fs}",
                        scenario.name()
                    );
                }
                let mut sharded = FaultQueryEngine::with_options(
                    &graph,
                    structure.clone(),
                    EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
                )
                .expect("matching graph");
                assert_eq!(
                    sharded.query_many_faults(&queries).expect("in range"),
                    expected,
                    "{name}/{}: f={f} sharded diverged",
                    scenario.name()
                );
            }
        }
    }
}

/// Acceptance criterion for the multi-source engine: per-source fault-set
/// answers match brute force on all |F| ≤ 2 sets, serial and sharded.
#[test]
fn multi_source_engine_is_exact_on_all_fault_sets_up_to_two() {
    let graph = Workload::new(WorkloadFamily::LayeredShallow, 30, SEED).generate();
    let sources = vec![VertexId(0), VertexId(7), VertexId(15)];
    let mbfs = MultiSourceBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build_multi(&graph, &Sources::multi(sources.clone()))
        .expect("valid input");
    let sets = enumerate_fault_sets(&graph, 2);
    let mut queries: Vec<(VertexId, VertexId, FaultSet)> = Vec::new();
    for fs in sets.iter().step_by(3) {
        for &s in &sources {
            for v in graph.vertices() {
                queries.push((s, v, fs.clone()));
            }
        }
    }
    let mut serial =
        MultiSourceEngine::with_options(&graph, mbfs.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let expected = serial.query_many_faults(&queries).expect("in range");
    for (i, (s, v, fs)) in queries.iter().enumerate() {
        assert_eq!(
            expected[i],
            brute(&graph, *s, *v, fs),
            "source {s:?}, vertex {v:?}, faults {fs}"
        );
    }
    let mut sharded = MultiSourceEngine::with_options(
        &graph,
        mbfs,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    assert_eq!(
        sharded.query_many_faults(&queries).expect("in range"),
        expected,
        "multi-source sharded batch diverged"
    );
}

/// A single hot fault probed by a whole batch (the skew case the group
/// splitting targets) stays byte-identical to the serial reference under
/// the default (env-overridable) thread configuration.
#[test]
fn skewed_single_fault_batches_are_deterministic() {
    let graph = Workload::new(WorkloadFamily::GridChords, 100, SEED).generate();
    let structure = TradeoffBuilder::new(0.25)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let hot: FaultSet = [
        ftbfs::graph::Fault::Edge(
            structure
                .backup_edges()
                .next()
                .expect("structure has backup edges"),
        ),
        ftbfs::graph::Fault::Vertex(VertexId::new(graph.num_vertices() - 1)),
    ]
    .into_iter()
    .collect();
    let queries: Vec<(VertexId, FaultSet)> = (0..2000)
        .map(|i| (VertexId::new(i % graph.num_vertices()), hot.clone()))
        .collect();
    let mut serial =
        FaultQueryEngine::with_options(&graph, structure.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let expected = serial.query_many_faults(&queries).expect("in range");
    // Default options pick up FTBFS_FORCE_THREADS in CI.
    let mut engine = FaultQueryEngine::new(&graph, structure).expect("matching graph");
    assert_eq!(
        engine.query_many_faults(&queries).expect("in range"),
        expected
    );
    for (i, (v, fs)) in queries.iter().enumerate() {
        assert_eq!(
            expected[i],
            brute(&graph, VertexId(0), *v, fs),
            "{v:?} {fs}"
        );
    }
}
