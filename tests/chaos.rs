//! Seeded chaos harness for the serving tier: a storm of injected faults
//! (slow reads, connection resets, partial writes, accept failures, worker
//! panics both caught and uncaught, queue stalls) hammers a live server
//! while retrying clients replay a precomputed workload. The invariants:
//!
//! * every answer that *does* arrive is byte-identical to the in-process
//!   engine's answer — faults may slow or kill a request, never corrupt it;
//! * every failure is a typed frame or a clean connection error — no hangs,
//!   no desynchronized frames, no garbage;
//! * the worker pool heals: panics are counted and every corpse is
//!   replaced, so the pool ends the storm at full strength;
//! * the server still drains and shuts down cleanly afterwards.
//!
//! The fault schedule is a pure function of the seed, so a failing seed
//! reproduces exactly: `FTBFS_CHAOS_SEED=<seed> cargo test --test chaos`.

use ftb_chaos::{ChaosConfig, ChaosStatsSnapshot, SeededChaos};
use ftb_core::EngineOptions;
use ftb_graph::{EdgeId, FaultSet, VertexId};
use ftb_server::protocol::{encode_response, ErrorCode, Request, Response};
use ftb_server::{
    wait_until_ready, wait_until_stopped_with, Client, EngineSpec, RetryPolicy, RetryStats,
    ServeOptions, Server,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Injected worker panics are *expected* here; without this hook every one
/// of them would dump a backtrace into the test output. Panics that are
/// not chaos-injected still print normally.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.contains("chaos: injected") {
                default(info);
            }
        }));
    });
}

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 1000;

/// Outcome counters for one storm run.
#[derive(Default, Debug)]
struct StormTally {
    ok: u64,
    shed: u64,
    internal: u64,
    deadline_exceeded: u64,
    io_errors: u64,
    reconnect_failures: u64,
}

fn run_storm(
    seed: u64,
    core: &Arc<ftb_core::EngineCore>,
    requests: &[Request],
    expected: &[Vec<u8>],
) -> (ChaosStatsSnapshot, StormTally) {
    let chaos = Arc::new(SeededChaos::new(ChaosConfig::storm(seed)));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(core),
        ServeOptions {
            workers: 2,
            queue_depth: 4,
            request_timeout: Some(Duration::from_millis(50)),
            idle_timeout: Duration::from_secs(10),
            chaos: Some(Arc::clone(&chaos) as Arc<dyn ftb_chaos::Chaos>),
            ..ServeOptions::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();
    assert!(wait_until_ready(addr, Duration::from_secs(5)));

    // Connecting during the storm can itself be chaos-killed (injected
    // accept failures, handshake resets); keep dialing within a budget.
    let connect = |budget: Duration| -> Option<Client> {
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            match Client::connect(addr) {
                Ok(mut c) => {
                    if c.set_read_timeout(Some(Duration::from_secs(5))).is_ok() {
                        return Some(c);
                    }
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        None
    };

    let cursor = AtomicU64::new(0);
    let mut tally = StormTally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread_idx in 0..CLIENT_THREADS {
            let cursor = &cursor;
            let policy = RetryPolicy {
                max_retries: 6,
                seed: seed ^ (thread_idx as u64).wrapping_mul(0x9E37_79B9),
                ..RetryPolicy::default()
            };
            handles.push(scope.spawn(move || {
                let mut t = StormTally::default();
                let mut retry_stats = RetryStats::default();
                let Some(mut client) = connect(Duration::from_secs(10)) else {
                    t.reconnect_failures += 1;
                    return t;
                };
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= requests.len() {
                        break;
                    }
                    match client.request_with_retry(&requests[i], &policy, &mut retry_stats) {
                        Ok(resp @ (Response::Dist(_) | Response::BatchDist(_))) => {
                            t.ok += 1;
                            assert_eq!(
                                encode_response(&resp),
                                expected[i],
                                "seed {seed:#x}: surviving answer for request {i} \
                                 diverged from the in-process engine"
                            );
                        }
                        Ok(Response::Overloaded) => t.shed += 1,
                        Ok(Response::Error { code, message }) => {
                            if code == ErrorCode::Internal as u16 {
                                t.internal += 1;
                            } else if code == ErrorCode::DeadlineExceeded as u16 {
                                t.deadline_exceeded += 1;
                            } else {
                                panic!(
                                    "seed {seed:#x}: unexpected error frame \
                                     code={code} message={message:?}"
                                );
                            }
                        }
                        Ok(other) => {
                            panic!("seed {seed:#x}: desynchronized reply {other:?}")
                        }
                        Err(_) => {
                            // Retry budget spent on a dead connection.
                            t.io_errors += 1;
                            match connect(Duration::from_secs(10)) {
                                Some(c) => client = c,
                                None => {
                                    t.reconnect_failures += 1;
                                    break;
                                }
                            }
                        }
                    }
                }
                t
            }));
        }
        for handle in handles {
            let t = handle.join().expect("client threads never panic");
            tally.ok += t.ok;
            tally.shed += t.shed;
            tally.internal += t.internal;
            tally.deadline_exceeded += t.deadline_exceeded;
            tally.io_errors += t.io_errors;
            tally.reconnect_failures += t.reconnect_failures;
        }
    });

    assert_eq!(
        tally.reconnect_failures, 0,
        "seed {seed:#x}: a client could not reconnect within its budget — \
         the server stopped accepting"
    );
    assert!(
        tally.ok > 0,
        "seed {seed:#x}: the storm drowned every single request"
    );

    // The pool heals: every injected panic was counted, every corpse
    // replaced. (The supervisor races the last reply, so poll.)
    let injected = chaos.stats();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let counted = server.metrics().thread_panics_worker.get();
        let alive = server.workers_alive();
        if counted == injected.worker_panics && alive == server.workers_configured() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed:#x}: pool never healed (panics counted {counted} of \
             {} injected, {alive}/{} workers alive)",
            injected.worker_panics,
            server.workers_configured(),
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.metrics().thread_panics_worker.get(),
        injected.worker_panics
    );

    // And it still shuts down cleanly, by wire if chaos allows, by handle
    // otherwise (the wire attempt can itself be chaos-killed).
    let wire_deadline = Instant::now() + Duration::from_secs(5);
    let mut acked = false;
    while Instant::now() < wire_deadline && !acked {
        match connect(Duration::from_secs(1)) {
            Some(mut c) => acked = c.shutdown().is_ok(),
            None => break,
        }
    }
    if !acked {
        server.shutdown();
    }
    server.join().expect("clean join after the storm");
    assert!(
        wait_until_stopped_with(addr, Duration::from_secs(5), Duration::from_millis(2)),
        "seed {seed:#x}: server kept accepting after join"
    );

    (injected, tally)
}

#[test]
fn chaos_storm_answers_stay_byte_identical_and_the_server_survives() {
    install_quiet_panic_hook();

    let mut seeds: Vec<u64> = vec![0xC0FFEE, 0xBADA55, 0x5EED];
    if let Ok(raw) = std::env::var("FTBFS_CHAOS_SEED") {
        let extra: u64 = raw
            .parse()
            .unwrap_or_else(|_| panic!("FTBFS_CHAOS_SEED must be a u64, got {raw:?}"));
        println!("chaos: extra seed from FTBFS_CHAOS_SEED: {extra} ({extra:#x})");
        seeds.push(extra);
    }

    let spec = EngineSpec {
        n: 120,
        seed: 31,
        ..EngineSpec::default()
    };
    let graph = spec.graph();
    let core = spec
        .build_core(&graph, EngineOptions::new().serial())
        .expect("spec builds");
    let source = spec.source();

    // The workload: single-edge-fault (and fault-free) distance queries
    // over a deterministic spread of targets, with the occasional small
    // batch so the mid-batch deadline check sees traffic too.
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let requests: Vec<Request> = (0..CLIENT_THREADS * REQUESTS_PER_THREAD)
        .map(|i| {
            let target = VertexId((i * 13 % n) as u32);
            let faults = if i % 5 == 0 {
                FaultSet::new()
            } else {
                FaultSet::from(EdgeId((i * 7 % m) as u32))
            };
            if i % 97 == 0 {
                Request::BatchDist {
                    source,
                    queries: (0..4u32)
                        .map(|j| (VertexId(((i + j as usize * 11) % n) as u32), faults.clone()))
                        .collect(),
                }
            } else {
                Request::Dist {
                    source,
                    target,
                    faults,
                }
            }
        })
        .collect();

    // Ground truth from the same core, through a private context.
    let mut ctx = core.new_context();
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|req| {
            let resp = match req {
                Request::Dist {
                    source,
                    target,
                    faults,
                } => Response::Dist(
                    ctx.dist_after_faults_from(&core, *source, *target, faults)
                        .expect("valid query"),
                ),
                Request::BatchDist { source, queries } => Response::BatchDist(
                    queries
                        .iter()
                        .map(|(t, f)| {
                            ctx.dist_after_faults_from(&core, *source, *t, f)
                                .expect("valid query")
                        })
                        .collect(),
                ),
                other => panic!("unminted request {other:?}"),
            };
            encode_response(&resp)
        })
        .collect();

    let mut total = ChaosStatsSnapshot::default();
    for &seed in &seeds {
        let started = Instant::now();
        let (injected, tally) = run_storm(seed, &core, &requests, &expected);
        println!(
            "chaos seed {seed:#x}: {} faults injected (slow_read={} reset={} \
             partial_write={} accept={} panic={} stall={}) | {} ok, {} shed, \
             {} internal, {} deadline-exceeded, {} io errors in {:.1}s",
            injected.total(),
            injected.slow_reads,
            injected.conn_resets,
            injected.partial_writes,
            injected.accept_errors,
            injected.worker_panics,
            injected.queue_stalls,
            tally.ok,
            tally.shed,
            tally.internal,
            tally.deadline_exceeded,
            tally.io_errors,
            started.elapsed().as_secs_f64(),
        );
        total.slow_reads += injected.slow_reads;
        total.conn_resets += injected.conn_resets;
        total.partial_writes += injected.partial_writes;
        total.accept_errors += injected.accept_errors;
        total.worker_panics += injected.worker_panics;
        total.queue_stalls += injected.queue_stalls;
    }

    assert!(
        total.total() >= 1000,
        "the storm must inject at least 1000 faults, got {}",
        total.total()
    );
    assert!(
        total.all_kinds_hit(),
        "every fault kind must fire at least once: {total:?}"
    );
}
