//! End-to-end integration tests: the full pipeline (workload → construction →
//! verification) across ε values and graph families, plus coarse checks that
//! the measured sizes respect the Theorem 3.1 envelopes.

use ftbfs::graph::VertexId;
use ftbfs::par::ParallelConfig;
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{verify_structure, BaselineBuilder, Sources, StructureBuilder, TradeoffBuilder};

fn build_and_verify(graph: &ftbfs::graph::Graph, eps: f64, seed: u64) -> ftbfs::FtBfsStructure {
    let structure = TradeoffBuilder::new(eps)
        .with_config(|c| c.with_seed(seed))
        .build(graph, &Sources::single(VertexId(0)))
        .expect("workload graphs with source 0 are valid input");
    let weights = TieBreakWeights::generate(graph, seed);
    let tree = ShortestPathTree::build(graph, &weights, VertexId(0));
    let report = verify_structure(graph, &tree, &structure, &ParallelConfig::default(), false);
    assert!(
        report.is_valid(),
        "eps={eps}: {} violations across {} checked edges",
        report.violations.len(),
        report.checked_edges
    );
    structure
}

#[test]
fn full_pipeline_is_valid_on_every_family_and_eps() {
    for &family in WorkloadFamily::all() {
        let graph = Workload::new(family, 90, 7).generate();
        for eps in [0.15, 0.3, 0.6] {
            let s = build_and_verify(&graph, eps, 7);
            // the structure always spans: it contains the BFS tree
            assert!(s.num_edges() >= graph.num_vertices() - 1);
            assert!(s.num_edges() <= graph.num_edges());
        }
    }
}

#[test]
fn theorem_3_1_envelopes_hold_with_generous_constants() {
    // b(n) = O(1/eps * n^{1+eps} * log n) and r(n) = O(1/eps * n^{1-eps} * log n).
    // Constants are unspecified by the theorem; we check with a generous
    // constant that the measured values never exceed the envelope shape.
    let graph = Workload::new(WorkloadFamily::LayeredDeep, 400, 11).generate();
    let n = graph.num_vertices() as f64;
    for eps in [0.2, 0.3, 0.4] {
        let s = build_and_verify(&graph, eps, 11);
        let log_n = n.ln();
        let b_bound = (8.0 / eps) * n.powf(1.0 + eps) * log_n;
        let r_bound = (8.0 / eps) * n.powf(1.0 - eps) * log_n;
        assert!(
            (s.num_backup() as f64) < b_bound,
            "eps={eps}: b = {} exceeds envelope {b_bound:.0}",
            s.num_backup()
        );
        assert!(
            (s.num_reinforced() as f64) < r_bound,
            "eps={eps}: r = {} exceeds envelope {r_bound:.0}",
            s.num_reinforced()
        );
        // the backup count also never exceeds the n^{3/2} branch by more than
        // a constant factor
        assert!((s.num_backup() as f64) < 4.0 * n.powf(1.5));
    }
}

#[test]
fn structures_never_exceed_the_baseline_by_much_and_reinforce_little() {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 300, 13).generate();
    let baseline = BaselineBuilder::new()
        .with_config(|c| c.with_seed(13))
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    for eps in [0.1, 0.25, 0.4] {
        let s = build_and_verify(&graph, eps, 13);
        // The mixed structure never needs more backup edges than the pure
        // backup baseline plus the tree (the baseline is a feasible point).
        assert!(
            s.num_backup() <= 2 * baseline.num_edges(),
            "eps={eps}: backup {} vs baseline {}",
            s.num_backup(),
            baseline.num_edges()
        );
        // Reinforcement stays well below "reinforce everything".
        assert!(s.num_reinforced() < graph.num_vertices());
    }
}

#[test]
fn reinforced_edges_are_always_tree_edges() {
    let graph = Workload::new(WorkloadFamily::GridChords, 250, 17).generate();
    let seed = 17;
    let s = build_and_verify(&graph, 0.25, seed);
    let weights = TieBreakWeights::generate(&graph, seed);
    let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
    for e in s.reinforced_edges() {
        assert!(
            tree.is_tree_edge(e),
            "reinforced edge {e:?} is not a tree edge"
        );
        assert!(s.contains_edge(e));
    }
}

#[test]
fn deterministic_given_the_same_seed() {
    let graph = Workload::new(WorkloadFamily::PreferentialAttachment, 200, 23).generate();
    let builder = TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(23));
    let sources = Sources::single(VertexId(0));
    let a = builder.build(&graph, &sources).expect("valid input");
    let b = builder.build(&graph, &sources).expect("valid input");
    assert_eq!(a.edge_set().to_vec(), b.edge_set().to_vec());
    assert_eq!(a.reinforced_set().to_vec(), b.reinforced_set().to_vec());
    // a different seed may legitimately produce a different (still valid)
    // structure, so we only check the same-seed case for equality.
}

#[test]
fn exhaustive_verification_on_a_small_instance() {
    // The cheap verifier only checks tree-edge failures; on a small instance
    // run the exhaustive mode to confirm non-tree failures are harmless too.
    let graph = Workload::new(WorkloadFamily::Hypercube, 64, 29).generate();
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(29))
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let weights = TieBreakWeights::generate(&graph, 29);
    let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
    let report = verify_structure(&graph, &tree, &s, &ParallelConfig::default(), true);
    assert!(report.is_valid());
    assert!(report.checked_edges >= s.num_edges() - s.num_reinforced());
}
