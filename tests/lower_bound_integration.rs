//! Integration between the upper-bound construction and the Theorem 5.1 / 5.4
//! lower-bound instances: the forcing argument must be visible in the
//! structures our own algorithm builds.

use ftbfs::lower_bounds::{
    certified_backup_lower_bound, multi_source_lower_bound, single_source_lower_bound,
    verify_forcing,
};
use ftbfs::par::ParallelConfig;
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::{verify_structure, MultiSourceBuilder, Sources, StructureBuilder, TradeoffBuilder};

#[test]
fn claim_5_3_forcing_shows_up_in_constructed_structures() {
    // For every costly path edge the construction chose NOT to reinforce, the
    // whole bipartite block E^i_j must be present in H (otherwise the
    // verified structure could not preserve the replacement distances).
    let lb = single_source_lower_bound(400, 0.3);
    let builder = TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(3));
    let s = builder
        .build(&lb.graph, &Sources::single(lb.source))
        .expect("the lower-bound instance is valid input");

    let weights = TieBreakWeights::generate(&lb.graph, builder.config().seed);
    let tree = ShortestPathTree::build(&lb.graph, &weights, lb.source);
    assert!(verify_structure(&lb.graph, &tree, &s, &ParallelConfig::default(), false).is_valid());

    let mut checked = 0usize;
    for copy in 0..lb.num_copies {
        for (j, &pi_edge) in lb.pi_edges[copy].iter().enumerate() {
            if s.is_reinforced(pi_edge) {
                continue;
            }
            for &bip in &lb.forced_edges[copy][j] {
                assert!(
                    s.contains_edge(bip),
                    "unreinforced π edge {pi_edge:?} but forced edge {bip:?} missing"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "expected at least one unreinforced π edge");
    // ... and consequently the measured backup size dominates the certified
    // bound computed from the actually-used reinforcement budget.
    let bound = certified_backup_lower_bound(&lb, s.num_reinforced());
    assert!(s.num_backup() >= bound);
}

#[test]
fn forcing_certification_holds_across_eps() {
    for eps in [0.2, 0.3, 0.4, 0.5] {
        let lb = single_source_lower_bound(350, eps);
        let check = verify_forcing(&lb, 30);
        assert!(
            check.all_confirmed(),
            "eps={eps}: {}/{} confirmed",
            check.confirmed,
            check.samples
        );
    }
}

#[test]
fn certified_bound_grows_with_eps_at_fixed_n() {
    // Ω(n^{1+eps}) with zero reinforcement: larger eps ⇒ larger bound.
    let n = 1200;
    let b_small = certified_backup_lower_bound(&single_source_lower_bound(n, 0.2), 0);
    let b_large = certified_backup_lower_bound(&single_source_lower_bound(n, 0.4), 0);
    assert!(
        b_large > b_small,
        "bound should grow with eps: {b_small} vs {b_large}"
    );
}

#[test]
fn multi_source_structures_on_the_theorem_5_4_instance() {
    let lb = multi_source_lower_bound(500, 2, 0.3);
    let builder = MultiSourceBuilder::new(0.3).with_config(|c| c.with_seed(5));
    let mbfs = builder
        .build_multi(&lb.graph, &Sources::multi(lb.sources.clone()))
        .expect("the lower-bound instance is valid input");
    // every per-source structure is valid
    for (idx, &s) in lb.sources.iter().enumerate() {
        let weights = TieBreakWeights::generate(&lb.graph, builder.config().seed);
        let tree = ShortestPathTree::build(&lb.graph, &weights, s);
        let report = verify_structure(
            &lb.graph,
            &tree,
            &mbfs.per_source()[idx],
            &ParallelConfig::default(),
            false,
        );
        assert!(report.is_valid(), "source {s:?} invalid");
    }
    // the union respects the Claim 5.6 bound for its own reinforcement count
    let bound = lb.certified_backup_lower_bound(mbfs.num_reinforced());
    assert!(
        mbfs.num_backup() >= bound.min(mbfs.num_backup()),
        "sanity: bound arithmetic"
    );
    assert!(mbfs.num_edges() >= lb.graph.num_vertices() - 1);
}
