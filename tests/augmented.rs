//! The augmented-structure serving suite: replacement-path augmentation
//! (`ftb_core::ftbfs`) cross-checked against brute-force BFS over every
//! workload family, with counter-based assertions that tier routing sends
//! every covered fault set to the sparse tiers — never to a full-graph
//! recomputation.
//!
//! CI runs this file as a dedicated step with `FTBFS_FORCE_THREADS=4`
//! alongside the multi-fault suite, so the augmentation sweeps and the
//! sharded batch path both run multi-threaded even on small runners.

use ftbfs::graph::{enumerate_fault_sets, Fault, FaultSet, VertexId};
use ftbfs::par::ParallelConfig;
use ftbfs::sp::UNREACHABLE;
use ftbfs::workloads::{FaultScenario, Workload, WorkloadFamily};
use ftbfs::{
    build_augmented_structure, cross_check_fault_sets, dist_after_faults_brute, AugmentCoverage,
    AugmentedStructure, BuildConfig, BuildPlan, EngineCore, EngineOptions, FaultQueryEngine,
    FtBfsAugmenter, MultiSourceBuilder, MultiSourceEngine, ReinforcedTreeBuilder, Sources,
    StructureBuilder,
};

const SEED: u64 = 0xA462;

fn augmented(graph: &ftbfs::graph::Graph, coverage: AugmentCoverage) -> AugmentedStructure {
    let config = BuildConfig::new(0.3)
        .with_seed(SEED)
        .serial()
        .with_augment(coverage);
    build_augmented_structure(
        graph,
        &Sources::single(VertexId(0)),
        BuildPlan::Tradeoff { eps: 0.3 },
        &config,
    )
    .expect("workload graphs with source 0 are valid input")
}

fn brute(graph: &ftbfs::graph::Graph, s: VertexId, v: VertexId, faults: &FaultSet) -> Option<u32> {
    let d = dist_after_faults_brute(graph, s, faults)[v.index()];
    (d != UNREACHABLE).then_some(d)
}

/// `|F| ≤ 2` with at most one vertex fault: the family the dual-failure
/// augmentation covers.
fn covered(faults: &FaultSet) -> bool {
    faults.len() <= 2 && faults.vertices().count() <= 1
}

/// Acceptance criterion, first half: on an augmented build, **all** answers
/// (covered or fallback) match brute-force BFS on every fault set of size
/// ≤ 2 over every workload family.
#[test]
fn every_workload_family_augmented_is_exact_on_all_fault_sets_up_to_two() {
    for &family in WorkloadFamily::all() {
        let w = Workload::new(family, 26, SEED);
        let (name, graph) = (w.label(), w.generate());
        let aug = augmented(&graph, AugmentCoverage::DualFailure);
        let core = EngineCore::build_augmented(&graph, aug).expect("matching graph");
        let sets = enumerate_fault_sets(&graph, 2);
        let mismatches = cross_check_fault_sets(&core, &sets, &ParallelConfig::default())
            .expect("enumerated sets are valid");
        assert!(
            mismatches.is_empty(),
            "{name}: {} of {} fault sets diverged; first: {:?}",
            mismatches.len(),
            sets.len(),
            mismatches.first()
        );
    }
}

/// Acceptance criterion, second half: every `|F| ≤ 2` query with at most
/// one vertex fault is answered without a full-graph BFS — asserted through
/// the per-tier counters, not inferred.
#[test]
fn covered_fault_sets_never_touch_the_full_graph_tier() {
    for &family in [WorkloadFamily::GridChords, WorkloadFamily::ErdosRenyi].iter() {
        let w = Workload::new(family, 30, SEED);
        let (name, graph) = (w.label(), w.generate());
        let aug = augmented(&graph, AugmentCoverage::DualFailure);
        let mut engine = FaultQueryEngine::from_augmented(&graph, aug).expect("matching graph");
        let mut queries = 0usize;
        for faults in enumerate_fault_sets(&graph, 2)
            .iter()
            .filter(|f| covered(f))
        {
            for v in graph.vertices().step_by(3) {
                let got = engine.dist_after_faults(v, faults).expect("in range");
                assert_eq!(
                    got,
                    brute(&graph, VertexId(0), v, faults),
                    "{name}: {v:?} under {faults}"
                );
                queries += 1;
            }
        }
        let stats = engine.query_stats();
        assert_eq!(stats.queries, queries);
        assert_eq!(
            stats.tiers.full_graph_bfs, 0,
            "{name}: a covered fault set was routed to the full-graph tier"
        );
        assert_eq!(stats.full_graph_bfs_runs, 0, "{name}: a full-graph BFS ran");
        assert_eq!(
            stats.tiers.total(),
            stats.queries,
            "tiers must sum to queries"
        );
        assert!(
            stats.tiers.augmented_bfs > 0,
            "{name}: augmented tier never fired"
        );
    }
}

/// Single-vertex-fault and dual-edge-fault queries on an augmented build
/// never take the `full_graph_bfs` tier (satellite: counter-based routing
/// assertions per fault kind).
#[test]
fn vertex_and_dual_edge_faults_route_to_the_augmented_tier() {
    let graph = Workload::new(WorkloadFamily::LayeredDeep, 36, SEED).generate();
    let aug = augmented(&graph, AugmentCoverage::DualFailure);
    let mut engine = FaultQueryEngine::from_augmented(&graph, aug).expect("matching graph");

    // every single vertex fault
    for v in graph.vertices().skip(1) {
        let faults = FaultSet::single_vertex(v);
        for probe in graph.vertices().step_by(5) {
            let got = engine.dist_after_faults(probe, &faults).expect("in range");
            assert_eq!(got, brute(&graph, VertexId(0), probe, &faults));
        }
    }
    // a spread of dual edge faults
    let m = graph.num_edges() as u32;
    for (a, b) in (0..m).zip((0..m).skip(7)).step_by(5) {
        let faults: FaultSet = [
            Fault::Edge(ftbfs::graph::EdgeId(a)),
            Fault::Edge(ftbfs::graph::EdgeId(b)),
        ]
        .into_iter()
        .collect();
        for probe in graph.vertices().step_by(9) {
            let got = engine.dist_after_faults(probe, &faults).expect("in range");
            assert_eq!(got, brute(&graph, VertexId(0), probe, &faults));
        }
    }
    let stats = engine.query_stats();
    assert_eq!(stats.tiers.full_graph_bfs, 0);
    assert_eq!(stats.full_graph_bfs_runs, 0);
    assert!(stats.tiers.augmented_bfs > 0);
}

/// Two simultaneous vertex faults are outside every published sparse
/// structure: they stay exact through the full-graph fallback (recorded as
/// future work in the ROADMAP).
#[test]
fn dual_vertex_faults_fall_back_to_the_full_graph_tier() {
    let graph = Workload::new(WorkloadFamily::GridChords, 25, SEED).generate();
    let aug = augmented(&graph, AugmentCoverage::DualFailure);
    let mut engine = FaultQueryEngine::from_augmented(&graph, aug).expect("matching graph");
    let faults: FaultSet = [Fault::Vertex(VertexId(3)), Fault::Vertex(VertexId(7))]
        .into_iter()
        .collect();
    for v in graph.vertices() {
        let got = engine.dist_after_faults(v, &faults).expect("in range");
        assert_eq!(got, brute(&graph, VertexId(0), v, &faults));
    }
    let stats = engine.query_stats();
    // Dual vertex faults never use the augmented tier: every query is
    // either answered by the exact full-graph fallback or — for targets
    // whose tree path provably avoids both vertices — by the O(1)
    // unaffected fast path straight off the fault-free row.
    assert_eq!(stats.tiers.augmented_bfs, 0);
    assert_eq!(stats.tiers.sparse_h_bfs, 0);
    assert_eq!(
        stats.tiers.full_graph_bfs + stats.tiers.unaffected_fast_path,
        stats.queries
    );
    assert!(stats.full_graph_bfs_runs > 0, "the fallback must have run");
}

/// Single-fault coverage serves singles sparsely but sends dual failures to
/// the fallback — coverage is a contract, not a heuristic.
#[test]
fn single_fault_coverage_serves_singles_but_not_duals() {
    let graph = Workload::new(WorkloadFamily::Hypercube, 32, SEED).generate();
    let aug = augmented(&graph, AugmentCoverage::SingleFault);
    assert_eq!(aug.coverage(), AugmentCoverage::SingleFault);
    let mut engine = FaultQueryEngine::from_augmented(&graph, aug).expect("matching graph");

    let vertex_fault = FaultSet::single_vertex(VertexId(5));
    for v in graph.vertices() {
        let got = engine
            .dist_after_faults(v, &vertex_fault)
            .expect("in range");
        assert_eq!(got, brute(&graph, VertexId(0), v, &vertex_fault));
    }
    let after_singles = engine.query_stats();
    assert_eq!(after_singles.tiers.full_graph_bfs, 0);
    assert!(after_singles.tiers.augmented_bfs > 0);

    let dual: FaultSet = [
        Fault::Edge(ftbfs::graph::EdgeId(0)),
        Fault::Edge(ftbfs::graph::EdgeId(3)),
    ]
    .into_iter()
    .collect();
    for v in graph.vertices() {
        let got = engine.dist_after_faults(v, &dual).expect("in range");
        assert_eq!(got, brute(&graph, VertexId(0), v, &dual));
    }
    let stats = engine.query_stats();
    assert!(
        stats.tiers.full_graph_bfs > 0,
        "dual failures are outside SingleFault coverage"
    );
}

/// The hypothetical failure of a reinforced edge — previously always a
/// full-graph recomputation — is served by the augmented tier.
#[test]
fn reinforced_edge_hypotheticals_use_the_augmented_tier() {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 32, SEED).generate();
    // The reinforced tree reinforces every tree edge, so every structure
    // edge exercises the hypothetical-failure path.
    let base = ReinforcedTreeBuilder::new()
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    assert!(base.num_reinforced() > 0);
    let reinforced: Vec<_> = base.reinforced_edges().collect();
    let aug = FtBfsAugmenter::new(AugmentCoverage::SingleFault)
        .with_seed(SEED)
        .serial()
        .augment(&graph, base)
        .expect("matching graph");
    let mut engine = FaultQueryEngine::from_augmented(&graph, aug).expect("matching graph");
    for &e in reinforced.iter().step_by(3) {
        let faults = FaultSet::single_edge(e);
        for v in graph.vertices().step_by(4) {
            let got = engine.dist_after_faults(v, &faults).expect("in range");
            assert_eq!(got, brute(&graph, VertexId(0), v, &faults), "edge {e:?}");
        }
    }
    let stats = engine.query_stats();
    assert_eq!(stats.tiers.full_graph_bfs, 0);
    assert_eq!(
        stats.tiers.sparse_h_bfs, 0,
        "reinforced edges skip the H tier"
    );
    assert!(stats.tiers.augmented_bfs > 0);
}

/// Every scenario family, restricted to its covered sets, is answered
/// exactly through batches — serial and sharded byte-identical, with the
/// full-graph tier untouched.
#[test]
fn scenario_batches_on_augmented_builds_avoid_full_graph_bfs() {
    let graph = Workload::new(WorkloadFamily::LayeredShallow, 40, SEED).generate();
    let aug = augmented(&graph, AugmentCoverage::DualFailure);
    for &scenario in FaultScenario::all() {
        for f in [1usize, 2] {
            let fault_sets: Vec<FaultSet> = scenario
                .generate(&graph, VertexId(0), f, 12, SEED)
                .into_iter()
                .filter(|fs| covered(fs) && !fs.is_empty())
                .collect();
            let queries: Vec<(VertexId, FaultSet)> = fault_sets
                .iter()
                .flat_map(|fs| graph.vertices().map(move |v| (v, fs.clone())))
                .collect();
            if queries.is_empty() {
                continue;
            }
            let mut serial = FaultQueryEngine::from_augmented_with_options(
                &graph,
                aug.clone(),
                EngineOptions::new().serial(),
            )
            .expect("matching graph");
            let expected = serial.query_many_faults(&queries).expect("in range");
            for (i, (v, fs)) in queries.iter().enumerate() {
                assert_eq!(
                    expected[i],
                    brute(&graph, VertexId(0), *v, fs),
                    "{}: f={f} {v:?} {fs}",
                    scenario.name()
                );
            }
            let serial_stats = serial.query_stats();
            assert_eq!(
                serial_stats.tiers.full_graph_bfs,
                0,
                "{}: f={f} full-graph tier on covered sets",
                scenario.name()
            );
            let mut sharded = FaultQueryEngine::from_augmented_with_options(
                &graph,
                aug.clone(),
                EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
            )
            .expect("matching graph");
            assert_eq!(
                sharded.query_many_faults(&queries).expect("in range"),
                expected,
                "{}: f={f} sharded diverged",
                scenario.name()
            );
            let sharded_stats = sharded.query_stats();
            assert_eq!(sharded_stats.tiers.full_graph_bfs, 0);
            assert_eq!(sharded_stats.queries, serial_stats.queries);
            assert_eq!(sharded_stats.tiers.total(), sharded_stats.queries);
        }
    }
}

/// Multi-source augmentation: per-source fault-set answers match brute
/// force, and covered sets stay off the full-graph tier for every source.
#[test]
fn multi_source_augmented_engine_is_exact_for_every_source() {
    let graph = Workload::new(WorkloadFamily::LayeredShallow, 24, SEED).generate();
    let sources = vec![VertexId(0), VertexId(5), VertexId(11)];
    let mbfs = MultiSourceBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build_multi(&graph, &Sources::multi(sources.clone()))
        .expect("valid input");
    let aug = FtBfsAugmenter::new(AugmentCoverage::DualFailure)
        .with_seed(SEED)
        .serial()
        .augment_multi(&graph, mbfs)
        .expect("matching graph");
    assert_eq!(aug.sources(), &sources[..]);
    let mut engine = MultiSourceEngine::from_augmented(&graph, aug).expect("matching graph");
    for faults in enumerate_fault_sets(&graph, 2).iter().step_by(5) {
        for &s in &sources {
            for v in graph.vertices().step_by(3) {
                let got = engine.dist_after_faults(s, v, faults).expect("in range");
                assert_eq!(
                    got,
                    brute(&graph, s, v, faults),
                    "source {s:?} under {faults}"
                );
            }
        }
    }
    let stats = engine.query_stats();
    assert_eq!(stats.tiers.total(), stats.queries);
    // Only sets with two vertex faults may have used the fallback; targets
    // provably unaffected by them are answered by the fast path instead,
    // so the fallback tier is bounded by (not equal to) the uncovered
    // query count.
    let uncovered_queries: usize = enumerate_fault_sets(&graph, 2)
        .iter()
        .step_by(5)
        .filter(|f| !covered(f))
        .count()
        * sources.len()
        * graph.vertices().step_by(3).count();
    assert!(stats.tiers.full_graph_bfs <= uncovered_queries);
    assert!(
        stats.tiers.full_graph_bfs > 0,
        "some dual-vertex query must have needed the fallback row"
    );
}

/// Augmentation bookkeeping is visible end to end: structure stats, core
/// accessors, and the `H ⊆ H⁺ ⊆ G` sandwich.
#[test]
fn augmentation_stats_and_core_accessors_are_reported() {
    let graph = Workload::new(WorkloadFamily::GridChords, 49, SEED).generate();
    let aug = augmented(&graph, AugmentCoverage::DualFailure);
    assert!(aug.num_edges() >= aug.base().num_edges());
    assert!(aug.num_edges() <= graph.num_edges());
    assert_eq!(aug.added_edges(), aug.num_edges() - aug.base().num_edges());
    let stats = aug.stats().clone();
    assert_eq!(stats.base_edges, aug.base().num_edges());
    assert!(stats.single_passes > 0);
    assert!(stats.dual_passes > 0);
    assert_eq!(
        stats.total_added(),
        aug.added_edges(),
        "stats must account for every added edge"
    );
    let expected_edges = aug.num_edges();
    let core = EngineCore::build_augmented(&graph, aug).expect("matching graph");
    assert_eq!(core.augment_coverage(), AugmentCoverage::DualFailure);
    assert_eq!(core.augmented_edges(), Some(expected_edges));
}
