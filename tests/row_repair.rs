//! The incremental row-repair suite: repaired post-failure rows must be
//! **byte-identical** to the rows a full CSR sweep produces, across every
//! workload family, every fault-scenario family, every serving tier
//! (`sparse_h_bfs`, `augmented_bfs`) and multi-source cores.
//!
//! "Byte-identical" is asserted through the public API: equal distances for
//! every vertex *and* equal extracted paths — a path's final edge is the
//! row's parent entry of its target, so all-vertex path equality pins the
//! parent rows too. The reference engine is the same build with
//! [`EngineOptions::with_force_full_sweep`] (the `FTBFS_FORCE_FULL_SWEEP`
//! escape hatch), which disables both the repair and the unaffected-target
//! fast path.
//!
//! CI runs this file as a dedicated step with `FTBFS_FORCE_THREADS=4` so
//! sharded batches exercise the repair path per worker context.

use ftbfs::graph::{enumerate_fault_sets, Fault, FaultSet, VertexId};
use ftbfs::workloads::{FaultScenario, Workload, WorkloadFamily};
use ftbfs::{
    build_augmented_structure, AugmentCoverage, BuildConfig, BuildPlan, EngineOptions,
    FaultQueryEngine, MultiSourceBuilder, MultiSourceEngine, Sources, StructureBuilder,
    TradeoffBuilder,
};

/// The "repaired" side of every comparison pins the repair path **on**
/// explicitly, so this differential suite keeps testing repair-vs-full even
/// when the whole test run is executed under `FTBFS_FORCE_FULL_SWEEP=1`
/// (CI does exactly that to exercise the escape hatch).
fn repaired_options() -> EngineOptions {
    EngineOptions::new().serial().with_force_full_sweep(false)
}

const SEED: u64 = 0x0E11;

fn small_workloads(target_n: usize) -> Vec<(String, ftbfs::graph::Graph)> {
    WorkloadFamily::all()
        .iter()
        .map(|&family| {
            let w = Workload::new(family, target_n, SEED);
            (w.label(), w.generate())
        })
        .collect()
}

/// Assert the repaired engine and the forced-full-sweep engine agree on
/// every vertex's distance and path under `faults` — i.e. the underlying
/// rows are byte-identical.
fn assert_rows_identical(
    name: &str,
    graph: &ftbfs::graph::Graph,
    repaired: &mut FaultQueryEngine<'_>,
    full: &mut FaultQueryEngine<'_>,
    faults: &FaultSet,
) {
    for v in graph.vertices() {
        let d_rep = repaired.dist_after_faults(v, faults).expect("in range");
        let d_full = full.dist_after_faults(v, faults).expect("in range");
        assert_eq!(d_rep, d_full, "{name}: dist({v:?}) under {faults}");
        let p_rep = repaired.path_after_faults(v, faults).expect("in range");
        let p_full = full.path_after_faults(v, faults).expect("in range");
        assert_eq!(p_rep, p_full, "{name}: path({v:?}) under {faults}");
    }
}

/// Sparse-H tier: every single structure-edge failure on every workload
/// family repairs to exactly the full sweep's row.
#[test]
fn sparse_tier_repairs_are_byte_identical_on_every_workload_family() {
    for (name, graph) in small_workloads(26) {
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let mut repaired =
            FaultQueryEngine::with_options(&graph, structure.clone(), repaired_options())
                .expect("matching graph");
        let mut full = FaultQueryEngine::with_options(
            &graph,
            structure,
            EngineOptions::new().serial().with_force_full_sweep(true),
        )
        .expect("matching graph");
        for e in graph.edge_ids() {
            assert_rows_identical(&name, &graph, &mut repaired, &mut full, &FaultSet::from(e));
        }
        let stats = repaired.query_stats();
        assert!(stats.repaired_rows > 0, "{name}: the repair path never ran");
        assert_eq!(
            full.query_stats().repaired_rows,
            0,
            "{name}: the forced engine must never repair"
        );
    }
}

/// Augmented tier: every |F| ≤ 2 fault set (vertex faults, dual failures,
/// reinforced hypotheticals) on an augmented build repairs to exactly the
/// full sweep's row over `H⁺ ∖ F`.
#[test]
fn augmented_tier_repairs_are_byte_identical() {
    for family in [WorkloadFamily::GridChords, WorkloadFamily::Hypercube] {
        let w = Workload::new(family, 24, SEED);
        let (name, graph) = (w.label(), w.generate());
        let config = BuildConfig::new(0.3)
            .with_seed(SEED)
            .serial()
            .with_augment(AugmentCoverage::DualFailure);
        let augmented = build_augmented_structure(
            &graph,
            &Sources::single(VertexId(0)),
            BuildPlan::Tradeoff { eps: 0.3 },
            &config,
        )
        .expect("valid input");
        let mut repaired = FaultQueryEngine::from_augmented_with_options(
            &graph,
            augmented.clone(),
            repaired_options(),
        )
        .expect("matching graph");
        let mut full = FaultQueryEngine::from_augmented_with_options(
            &graph,
            augmented,
            EngineOptions::new().serial().with_force_full_sweep(true),
        )
        .expect("matching graph");
        for faults in enumerate_fault_sets(&graph, 2).iter().step_by(3) {
            assert_rows_identical(&name, &graph, &mut repaired, &mut full, faults);
        }
        let stats = repaired.query_stats();
        assert!(stats.repaired_rows > 0, "{name}: repair never ran");
        assert!(
            stats.augmented_bfs_runs > 0,
            "{name}: the augmented tier never served"
        );
    }
}

/// Fault-scenario batches: serial and per-scenario, the repaired engine's
/// batch answers equal the forced engine's, for f ∈ {1, 2}.
#[test]
fn scenario_batches_match_forced_full_sweeps() {
    for (name, graph) in small_workloads(30) {
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        for &scenario in FaultScenario::all() {
            for f in [1usize, 2] {
                let sets = scenario.generate(&graph, VertexId(0), f, 12, SEED);
                let queries: Vec<(VertexId, FaultSet)> = sets
                    .iter()
                    .filter(|s| !s.is_empty())
                    .flat_map(|fs| graph.vertices().map(move |v| (v, fs.clone())))
                    .collect();
                let mut repaired =
                    FaultQueryEngine::with_options(&graph, structure.clone(), repaired_options())
                        .expect("matching graph");
                let mut full = FaultQueryEngine::with_options(
                    &graph,
                    structure.clone(),
                    EngineOptions::new().serial().with_force_full_sweep(true),
                )
                .expect("matching graph");
                let a = repaired.query_many_faults(&queries).expect("in range");
                let b = full.query_many_faults(&queries).expect("in range");
                assert_eq!(a, b, "{name}/{}/f={f}", scenario.name());
            }
        }
    }
}

/// Multi-source cores repair per-slot: each source has its own fault-free
/// tree, and the repaired rows agree with forced full sweeps for every
/// served source.
#[test]
fn multi_source_repairs_are_byte_identical_per_source() {
    let graph = Workload::new(WorkloadFamily::GridChords, 25, SEED).generate();
    let sources = vec![VertexId(0), VertexId(7), VertexId(19)];
    let mbfs = MultiSourceBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build_multi(&graph, &Sources::multi(sources.clone()))
        .expect("valid input");
    let mut repaired = MultiSourceEngine::with_options(&graph, mbfs.clone(), repaired_options())
        .expect("matching graph");
    let mut full = MultiSourceEngine::with_options(
        &graph,
        mbfs,
        EngineOptions::new().serial().with_force_full_sweep(true),
    )
    .expect("matching graph");
    for e in graph.edge_ids() {
        let faults = FaultSet::from(e);
        for &s in &sources {
            for v in graph.vertices() {
                assert_eq!(
                    repaired.dist_after_faults(s, v, &faults).expect("in range"),
                    full.dist_after_faults(s, v, &faults).expect("in range"),
                    "source {s:?}, vertex {v:?}, edge {e:?}"
                );
                assert_eq!(
                    repaired.path_after_faults(s, v, &faults).expect("in range"),
                    full.path_after_faults(s, v, &faults).expect("in range"),
                    "source {s:?}, vertex {v:?}, edge {e:?}"
                );
            }
        }
    }
    assert!(repaired.query_stats().repaired_rows > 0);
}

/// Targeted queries on provably unaffected vertices run **zero** BFS
/// sweeps of any kind: they are answered straight off the fault-free row
/// and attributed to the `unaffected_fast_path` tier.
#[test]
fn unaffected_targeted_queries_run_zero_sweeps() {
    let graph = Workload::new(WorkloadFamily::GridChords, 49, SEED).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let mut engine = FaultQueryEngine::with_options(&graph, structure, repaired_options())
        .expect("matching graph");
    // Tree-concentrated single faults guarantee the fault always touches
    // the BFS tree, so "unaffected" is never vacuous fault-free routing.
    let sets = FaultScenario::TreeConcentrated.generate(&graph, VertexId(0), 1, 16, SEED);
    let mut fast_path_hits = 0usize;
    for faults in &sets {
        let affected = engine
            .core()
            .affected_vertex_count(VertexId(0), faults)
            .expect("valid faults");
        assert!(affected > 0, "a tree fault must affect its subtree");
        for v in graph.vertices() {
            let before = engine.query_stats();
            let d = engine.dist_after_faults(v, faults).expect("in range");
            let delta = engine.query_stats().delta_since(&before);
            if delta.tiers.unaffected_fast_path == 1 {
                fast_path_hits += 1;
                assert_eq!(
                    delta.structure_bfs_runs + delta.augmented_bfs_runs + delta.full_graph_bfs_runs,
                    0,
                    "fast-path query ran a sweep ({v:?} under {faults})"
                );
                assert_eq!(delta.repaired_rows, 0);
                assert_eq!(delta.cached_answers, 1);
                assert_eq!(
                    d,
                    engine.fault_free_dist(v).expect("in range"),
                    "fast path must answer the fault-free distance"
                );
            }
        }
    }
    assert!(
        fast_path_hits > 0,
        "tree faults must leave some vertex provably unaffected"
    );
    let stats = engine.query_stats();
    assert_eq!(stats.tiers.total(), stats.queries);
}

/// The affected-set observable: counts are 0 for faults outside the tree,
/// the full subtree for tree faults, and error for bad inputs.
#[test]
fn affected_vertex_count_matches_tree_structure() {
    let graph = ftbfs::graph::generators::path(6); // 0-1-2-3-4-5, T0 is the path
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let engine = FaultQueryEngine::new(&graph, structure).expect("matching graph");
    let core = engine.core();
    let e23 = graph
        .find_edge(VertexId(2), VertexId(3))
        .expect("path edge");
    assert_eq!(
        core.affected_vertex_count(VertexId(0), &FaultSet::from(e23))
            .expect("valid"),
        3,
        "failing 2-3 affects the suffix {{3,4,5}}"
    );
    assert_eq!(
        core.affected_vertex_count(VertexId(0), &FaultSet::single_vertex(VertexId(4)))
            .expect("valid"),
        2,
        "failing vertex 4 affects {{4, 5}}"
    );
    // Nested faults merge into one interval.
    let nested: FaultSet = [Fault::Edge(e23), Fault::Vertex(VertexId(4))]
        .into_iter()
        .collect();
    assert_eq!(
        core.affected_vertex_count(VertexId(0), &nested)
            .expect("valid"),
        3,
        "the vertex-4 subtree nests inside the edge-2-3 subtree"
    );
    assert!(core
        .affected_vertex_count(VertexId(3), &FaultSet::from(e23))
        .is_err());
}
