//! Property-based integration tests: random graphs, random ε, and the
//! defining FT-BFS guarantee checked from scratch.

use ftbfs::graph::VertexId;
use ftbfs::par::ParallelConfig;
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::workloads::families;
use ftbfs::{verify_structure, Sources, StructureBuilder, TradeoffBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for any connected random graph and any ε, the
    /// constructed structure verifies against the definition.
    #[test]
    fn constructed_structures_always_verify(
        n in 20usize..70,
        avg_degree in 3usize..8,
        eps in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        let m = n * avg_degree / 2;
        let graph = families::erdos_renyi_gnm(n, m, seed);
        let structure = TradeoffBuilder::new(eps)
            .with_config(|c| c.with_seed(seed).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("generated workloads are valid input");

        // structural invariants
        prop_assert!(structure.num_edges() <= graph.num_edges());
        prop_assert_eq!(
            structure.num_edges(),
            structure.num_backup() + structure.num_reinforced()
        );

        let weights = TieBreakWeights::generate(&graph, seed);
        let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
        // the BFS tree is always contained
        for &e in tree.tree_edges() {
            prop_assert!(structure.contains_edge(e));
        }
        // and the structure verifies
        let report = verify_structure(&graph, &tree, &structure, &ParallelConfig::serial(), false);
        prop_assert!(
            report.is_valid(),
            "eps={}, seed={}: {} violations",
            eps, seed, report.violations.len()
        );
    }

    /// The ε = 0 extreme always degenerates to the reinforced BFS tree.
    #[test]
    fn eps_zero_is_always_the_reinforced_tree(
        n in 15usize..60,
        seed in 0u64..500,
    ) {
        let graph = families::erdos_renyi_gnp(n, 0.15, seed);
        let structure = TradeoffBuilder::new(0.0)
            .with_config(|c| c.with_seed(seed))
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("valid input");
        prop_assert_eq!(structure.num_backup(), 0);
        prop_assert_eq!(structure.num_edges(), graph.num_vertices() - 1);
        prop_assert_eq!(structure.num_reinforced(), graph.num_vertices() - 1);
    }

    /// The baseline branch (ε ≥ 1/2) never reinforces anything.
    #[test]
    fn baseline_branch_never_reinforces(
        n in 15usize..60,
        eps in 0.5f64..1.0,
        seed in 0u64..500,
    ) {
        let graph = families::erdos_renyi_gnp(n, 0.2, seed);
        let structure = TradeoffBuilder::new(eps)
            .with_config(|c| c.with_seed(seed))
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("valid input");
        prop_assert_eq!(structure.num_reinforced(), 0);
        prop_assert!(structure.stats().used_baseline);
    }

    /// The augmented structures: on random graphs, a dual-failure
    /// augmentation answers every sampled `|F| ≤ 2` set exactly like
    /// brute-force BFS, and no covered set ever reaches the full-graph
    /// fallback tier.
    #[test]
    fn augmented_structures_agree_with_brute_force(
        n in 16usize..36,
        avg_degree in 3usize..7,
        eps in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        use ftbfs::graph::{enumerate_fault_sets, Graph};
        use ftbfs::sp::UNREACHABLE;
        use ftbfs::{
            build_augmented_structure, dist_after_faults_brute, AugmentCoverage, BuildConfig,
            BuildPlan, FaultQueryEngine,
        };

        let m = n * avg_degree / 2;
        let graph: Graph = families::erdos_renyi_gnm(n, m, seed);
        let config = BuildConfig::new(eps)
            .with_seed(seed)
            .serial()
            .with_augment(AugmentCoverage::DualFailure);
        let augmented = build_augmented_structure(
            &graph,
            &Sources::single(VertexId(0)),
            BuildPlan::Tradeoff { eps },
            &config,
        )
        .expect("generated workloads are valid input");
        prop_assert!(augmented.num_edges() <= graph.num_edges());
        prop_assert!(augmented.num_edges() >= augmented.base().num_edges());
        let mut engine =
            FaultQueryEngine::from_augmented(&graph, augmented).expect("matching graph");
        let sets = enumerate_fault_sets(&graph, 2);
        let mut fallback_queries = 0usize;
        for faults in sets.iter().step_by(13) {
            let brute = dist_after_faults_brute(&graph, VertexId(0), faults);
            let is_covered = faults.len() <= 2 && faults.vertices().count() <= 1;
            for v in graph.vertices().step_by(2) {
                let got = engine.dist_after_faults(v, faults).expect("in range");
                let want = (brute[v.index()] != UNREACHABLE).then_some(brute[v.index()]);
                prop_assert_eq!(
                    got, want,
                    "eps={}, seed={}: {:?} under {}", eps, seed, v, faults
                );
                if !is_covered {
                    fallback_queries += 1;
                }
            }
        }
        let stats = engine.query_stats();
        // Covered sets must stay off the full-graph tier; uncovered-set
        // queries split between the fallback and the unaffected fast path
        // (targets whose tree path provably avoids both faults), so the
        // fallback tier is bounded by the uncovered query count.
        prop_assert!(
            stats.tiers.full_graph_bfs <= fallback_queries,
            "covered sets must stay off the full-graph tier (seed={})",
            seed
        );
        prop_assert_eq!(stats.tiers.total(), stats.queries);
    }

    /// The incremental row repair: on random graphs with random ε, the
    /// default engine (repair + unaffected fast path) and a forced
    /// full-sweep engine produce byte-identical answers — distances *and*
    /// extracted paths, whose last edge is the row's parent entry, so this
    /// pins the parent rows too — for every sampled fault set of size ≤ 2.
    #[test]
    fn repaired_rows_agree_with_forced_full_sweeps(
        n in 14usize..36,
        avg_degree in 3usize..7,
        eps in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        use ftbfs::graph::enumerate_fault_sets;
        use ftbfs::{EngineOptions, FaultQueryEngine};

        let m = n * avg_degree / 2;
        let graph = families::erdos_renyi_gnm(n, m, seed);
        let structure = TradeoffBuilder::new(eps)
            .with_config(|c| c.with_seed(seed).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("generated workloads are valid input");
        // Repair pinned on so the differential survives a test run under
        // FTBFS_FORCE_FULL_SWEEP=1 (CI covers that mode for the whole suite).
        let mut repaired = FaultQueryEngine::with_options(
            &graph,
            structure.clone(),
            EngineOptions::new().serial().with_force_full_sweep(false),
        )
        .expect("matching graph");
        let mut full = FaultQueryEngine::with_options(
            &graph,
            structure,
            EngineOptions::new().serial().with_force_full_sweep(true),
        )
        .expect("matching graph");
        for faults in enumerate_fault_sets(&graph, 2).iter().step_by(9) {
            for v in graph.vertices().step_by(2) {
                prop_assert_eq!(
                    repaired.dist_after_faults(v, faults).expect("in range"),
                    full.dist_after_faults(v, faults).expect("in range"),
                    "eps={}, seed={}: dist({:?}) under {}", eps, seed, v, faults
                );
                prop_assert_eq!(
                    repaired.path_after_faults(v, faults).expect("in range"),
                    full.path_after_faults(v, faults).expect("in range"),
                    "eps={}, seed={}: path({:?}) under {}", eps, seed, v, faults
                );
            }
        }
        prop_assert_eq!(full.query_stats().repaired_rows, 0);
        let stats = repaired.query_stats();
        prop_assert_eq!(stats.tiers.total(), stats.queries);
    }

    /// The generalised fault model: on random graphs with random ε, every
    /// fault set of size ≤ 2 (edges, vertices and mixed) answers exactly
    /// like brute-force BFS over the masked graph.
    #[test]
    fn fault_set_queries_agree_with_brute_force(
        n in 16usize..40,
        avg_degree in 3usize..7,
        eps in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        use ftbfs::graph::{enumerate_fault_sets, Graph};
        use ftbfs::sp::UNREACHABLE;
        use ftbfs::{dist_after_faults_brute, FaultQueryEngine};

        let m = n * avg_degree / 2;
        let graph: Graph = families::erdos_renyi_gnm(n, m, seed);
        let structure = TradeoffBuilder::new(eps)
            .with_config(|c| c.with_seed(seed).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("generated workloads are valid input");
        let mut engine = FaultQueryEngine::new(&graph, structure).expect("matching graph");
        // Sample the |F| ≤ 2 space: checking every set of every case would
        // dominate the whole suite's runtime.
        let sets = enumerate_fault_sets(&graph, 2);
        for faults in sets.iter().step_by(11) {
            let brute = dist_after_faults_brute(&graph, VertexId(0), faults);
            for v in graph.vertices() {
                let got = engine.dist_after_faults(v, faults).expect("in range");
                let want = (brute[v.index()] != UNREACHABLE).then_some(brute[v.index()]);
                prop_assert_eq!(
                    got, want,
                    "eps={}, seed={}: {:?} under {}", eps, seed, v, faults
                );
            }
        }
    }
}
